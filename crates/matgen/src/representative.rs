//! Scaled-down analogs of the 21 representative matrices of paper Table 2.
//!
//! Each analog matches its original's *structural class* — the row-length
//! distribution that decides DASP category membership, and the column
//! locality pattern — at roughly 1/40 to 1/100 of the original nonzero
//! count, so the full Fig. 11/12 sweep runs in seconds on a CPU simulator.
//! The paper's row/nnz dimensions are recorded alongside for reporting.

use dasp_sparse::{Coo, Csr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::generators::{
    banded, block_dense, circuit_like, diagonal_bands, rmat, stencil2d, uniform_random_var,
};

/// One Table-2 matrix: the paper's metadata plus our synthetic analog.
pub struct RepresentativeMatrix {
    /// SuiteSparse name, as printed in Table 2.
    pub name: &'static str,
    /// Rows x cols of the original.
    pub paper_shape: (usize, usize),
    /// Nonzeros of the original.
    pub paper_nnz: usize,
    /// The scaled analog.
    pub matrix: Csr<f64>,
}

/// Replaces each row in `rows` with `len` uniformly scattered nonzeros,
/// turning them into "dense" (long) rows.
fn add_long_rows(csr: &Csr<f64>, rows: &[usize], len: usize, seed: u64) -> Csr<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = Coo::new(csr.rows, csr.cols);
    for i in 0..csr.rows {
        if rows.contains(&i) {
            continue;
        }
        for (c, v) in csr.row(i) {
            coo.push(i, c as usize, v);
        }
    }
    for &r in rows {
        for _ in 0..len {
            let c = rng.gen_range(0..csr.cols);
            let v = rng.gen_range(0.001..1.0);
            coo.push(r, c, v);
        }
    }
    coo.to_csr()
}

/// Gives every empty row a diagonal self-loop — web-crawl matrices like
/// `webbase-1M` keep an entry for dangling pages, so their rows are short
/// rather than empty.
fn fill_empty_diag(csr: &Csr<f64>, seed: u64) -> Csr<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = Coo::new(csr.rows, csr.cols);
    for i in 0..csr.rows {
        if csr.row_len(i) == 0 {
            coo.push(i, i.min(csr.cols - 1), rng.gen_range(0.1..1.0));
        }
        for (c, v) in csr.row(i) {
            coo.push(i, c as usize, v);
        }
    }
    coo.to_csr()
}

/// Empties every row whose index satisfies `i % period == phase`,
/// reproducing matrices with many empty rows (`cop20k_A` has 21349).
fn clear_rows(csr: &Csr<f64>, period: usize, phase: usize) -> Csr<f64> {
    let mut coo = Coo::new(csr.rows, csr.cols);
    for i in 0..csr.rows {
        if i % period == phase {
            continue;
        }
        for (c, v) in csr.row(i) {
            coo.push(i, c as usize, v);
        }
    }
    coo.to_csr()
}

/// Builds all 21 analogs, in Table-2 order.
pub fn representative() -> Vec<RepresentativeMatrix> {
    let mk = |name, shape, nnz, matrix| RepresentativeMatrix {
        name,
        paper_shape: shape,
        paper_nnz: nnz,
        matrix,
    };
    vec![
        // FEM / structural: banded medium rows (~53/row).
        mk(
            "pwtk",
            (217_918, 217_918),
            11_524_432,
            banded(5000, 60, 52, 101),
        ),
        // Circuit with a handful of enormous rows.
        mk(
            "FullChip",
            (2_987_012, 2_987_012),
            26_621_983,
            circuit_like(24_000, 8, 3500, 102),
        ),
        // Dense 16x16 block structure plus very long rows: the paper notes
        // mip1's nonzeros are dominated by the long-rows category.
        mk(
            "mip1",
            (66_463, 66_463),
            10_352_819,
            add_long_rows(
                &block_dense(1024, 16, 4, 103),
                &(0..100).map(|k| k * 10).collect::<Vec<_>>(),
                1200,
                1031,
            ),
        ),
        // 2-D epidemiology grid: pure short rows (4/row).
        mk(
            "mc2depi",
            (525_825, 525_825),
            2_100_225,
            stencil2d(230, 230, 4, 104),
        ),
        // Web graph, power-law, mostly tiny rows.
        mk(
            "webbase-1M",
            (1_000_005, 1_000_005),
            3_105_536,
            fill_empty_diag(&rmat(14, 3, 105), 1051),
        ),
        // Huge circuit: short rows plus dense rows.
        mk(
            "circuit5M",
            (5_558_326, 5_558_326),
            59_524_291,
            circuit_like(30_000, 10, 3000, 106),
        ),
        // Quantum chemistry: medium rows with a long-row component.
        mk(
            "Si41Ge41H72",
            (185_639, 185_639),
            15_011_265,
            add_long_rows(
                &banded(4000, 90, 55, 107),
                &(0..60).map(|k| k * 66).collect::<Vec<_>>(),
                1500,
                1071,
            ),
        ),
        mk(
            "Ga41As41H72",
            (268_096, 268_096),
            18_488_476,
            add_long_rows(
                &banded(4600, 80, 48, 108),
                &(0..70).map(|k| k * 65).collect::<Vec<_>>(),
                1400,
                1081,
            ),
        ),
        // Web crawls: skewed power-law with locality.
        mk(
            "in-2004",
            (1_382_908, 1_382_908),
            16_917_053,
            rmat(13, 12, 109),
        ),
        mk("eu-2005", (862_664, 862_664), 19_235_140, rmat(12, 22, 110)),
        // FEM ship section.
        mk(
            "shipsec1",
            (140_874, 140_874),
            7_813_404,
            banded(4500, 60, 54, 111),
        ),
        // Economics: short scattered rows.
        mk(
            "mac_econ_fwd500",
            (206_500, 206_500),
            1_273_389,
            uniform_random_var(16_000, 16_000, 2, 10, 112),
        ),
        // Small circuit.
        mk(
            "scircuit",
            (170_998, 170_998),
            958_936,
            circuit_like(14_000, 2, 300, 113),
        ),
        // Protein: very heavy medium rows (~119/row).
        mk(
            "pdb1HYS",
            (36_417, 36_417),
            4_344_765,
            banded(2400, 140, 118, 114),
        ),
        // FEM sphere (~72/row).
        mk(
            "consph",
            (83_334, 83_334),
            6_010_480,
            banded(3600, 100, 72, 115),
        ),
        // FEM cantilever (~64/row).
        mk(
            "cant",
            (62_451, 62_451),
            4_007_383,
            banded(3400, 70, 64, 116),
        ),
        // Accelerator cavity: medium rows plus many empty rows.
        mk(
            "cop20k_A",
            (121_192, 121_192),
            2_624_331,
            clear_rows(&banded(9000, 50, 26, 117), 6, 3),
        ),
        // Simulation netlist with a few dense rows, moderate size.
        mk(
            "dc2",
            (116_835, 116_835),
            766_396,
            circuit_like(10_000, 6, 1800, 118),
        ),
        // CFD (~49/row).
        mk(
            "rma10",
            (46_835, 46_835),
            2_329_092,
            banded(3000, 55, 48, 119),
        ),
        // QCD lattice: perfectly uniform 39/row.
        mk(
            "conf5_4-8x8-10",
            (49_152, 49_152),
            1_916_928,
            banded(3200, 24, 39, 120),
        ),
        // ASIC netlist: short rows plus dense rows, some diagonal bands.
        mk(
            "ASIC_680k",
            (682_862, 682_862),
            3_871_773,
            add_long_rows(
                &diagonal_bands(16_000, &[0, 1, -1, 40], 121),
                &[0, 4000, 8000, 12_000],
                2500,
                1211,
            ),
        ),
    ]
}

/// The 21 names in Table-2 order.
pub fn representative_names() -> Vec<&'static str> {
    representative().iter().map(|r| r.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_sparse::RowStats;

    #[test]
    fn builds_21_valid_matrices() {
        let reps = representative();
        assert_eq!(reps.len(), 21);
        for r in &reps {
            r.matrix
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", r.name));
            assert!(
                r.matrix.nnz() > 10_000,
                "{} too small: {}",
                r.name,
                r.matrix.nnz()
            );
            assert!(
                r.matrix.nnz() < 800_000,
                "{} too large: {}",
                r.name,
                r.matrix.nnz()
            );
        }
    }

    #[test]
    fn names_are_unique_and_in_table_order() {
        let names = representative_names();
        assert_eq!(names[0], "pwtk");
        assert_eq!(names[20], "ASIC_680k");
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 21);
    }

    #[test]
    fn mc2depi_analog_is_all_short_rows() {
        let reps = representative();
        let m = &reps.iter().find(|r| r.name == "mc2depi").unwrap().matrix;
        let s = RowStats::of(m);
        assert!(s.max_len <= 5);
    }

    #[test]
    fn cop20k_analog_has_empty_rows() {
        let reps = representative();
        let m = &reps.iter().find(|r| r.name == "cop20k_A").unwrap().matrix;
        let s = RowStats::of(m);
        assert!(s.empty_rows > m.rows / 10, "empty rows: {}", s.empty_rows);
    }

    #[test]
    fn fullchip_analog_has_long_rows() {
        let reps = representative();
        let m = &reps.iter().find(|r| r.name == "FullChip").unwrap().matrix;
        let s = RowStats::of(m);
        assert!(s.max_len > 256, "max row len {}", s.max_len);
    }

    #[test]
    fn chemistry_analogs_mix_medium_and_long() {
        let reps = representative();
        for name in ["Si41Ge41H72", "Ga41As41H72"] {
            let m = &reps.iter().find(|r| r.name == name).unwrap().matrix;
            let s = RowStats::of(m);
            assert!(s.max_len > 256, "{name} needs long rows");
            let medium = (0..m.rows)
                .filter(|&i| m.row_len(i) > 4 && m.row_len(i) <= 256)
                .count();
            assert!(medium > m.rows / 2, "{name} should be mostly medium rows");
        }
    }
}

//! The SpMM contract, end to end: for any matrix, any precision, and any
//! batch width, every column of `spmm(B)` must be **bit-identical** to
//! `spmv` of the same column of B — the masked-A segment scheme only ever
//! adds `±0.0` to the single-vector FMA chains — under both executors,
//! with the last panel stored masked (no padding slots at all). On
//! top of the value contract, the A-side traffic (`bytes_val +
//! bytes_idx`) is streamed **once** regardless of the RHS width: the
//! A-resident panel sweep amortizes it over every panel.

use dasp_core::DaspMatrix;
use dasp_fp16::{Scalar, F16};
use dasp_simt::{CountingProbe, Executor, NoProbe, ParExecutor};
use dasp_sparse::{Coo, Csr, DenseMat, PANEL_WIDTH};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A parallel executor that always threads, even on tiny grids.
fn forced_par() -> Executor {
    Executor::Par(
        ParExecutor::new()
            .with_threads(Some(4))
            .with_seq_threshold(0),
    )
}

/// Random matrix with a steerable short/medium/long row-length mix, so
/// the inputs cover every DASP category combination.
fn random_matrix(
    rows: usize,
    cols: usize,
    short_w: u32,
    medium_w: u32,
    long_w: u32,
    seed: u64,
) -> Csr<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = Coo::new(rows, cols);
    let total = (short_w + medium_w + long_w).max(1);
    for r in 0..rows {
        let dice = rng.gen_range(0..total);
        let len = if dice < short_w {
            rng.gen_range(0..=4usize) // includes empty rows
        } else if dice < short_w + medium_w {
            rng.gen_range(5..=256usize)
        } else {
            rng.gen_range(257..=600usize)
        };
        let len = len.min(cols);
        let mut cs: Vec<usize> = Vec::with_capacity(len);
        while cs.len() < len {
            let c = rng.gen_range(0..cols);
            if !cs.contains(&c) {
                cs.push(c);
            }
        }
        for c in cs {
            coo.push(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    coo.to_csr()
}

/// Random width-`w` RHS panel at precision `S`.
fn random_rhs<S: Scalar>(cols: usize, width: usize, seed: u64) -> DenseMat<S> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let columns: Vec<Vec<S>> = (0..width)
        .map(|_| {
            (0..cols)
                .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
                .collect()
        })
        .collect();
    DenseMat::from_columns(&columns)
}

/// Column-slicing parity at precision `S`: every column of the SpMM
/// result equals the single-vector SpMV bit for bit, under the given
/// executor.
fn assert_column_slicing<S: Scalar>(csr: &Csr<S>, width: usize, seed: u64, exec: &Executor) {
    let d = DaspMatrix::from_csr(csr);
    let b = random_rhs::<S>(csr.cols, width, seed);
    let y = d.spmm_with(&b, &mut NoProbe, exec);
    assert_eq!((y.rows(), y.cols()), (csr.rows, width));
    for j in 0..width {
        let col_in = b.column(j);
        let want = d.spmv_with(&col_in, &mut NoProbe, &Executor::seq());
        let got = y.column(j);
        for r in 0..csr.rows {
            assert_eq!(
                got[r].to_f64().to_bits(),
                want[r].to_f64().to_bits(),
                "width {width} column {j} row {r}: spmm {} != spmv {}",
                got[r].to_f64(),
                want[r].to_f64()
            );
        }
    }
    // The last panel is stored masked, not padded: storage is exactly
    // rows x cols, with no dead slots to account for.
    assert_eq!(y.data().len(), y.rows() * y.cols());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline satellite: widths 1..=20 (partial panel, exact
    /// panels, multiple panels), all three precisions, sequential
    /// executor.
    #[test]
    fn spmm_columns_match_spmv_bitwise(
        seed in 0u64..1000,
        width in 1usize..=20,
        short_w in 0u32..4,
        medium_w in 0u32..4,
        long_w in 0u32..2,
    ) {
        let csr = random_matrix(60, 90, short_w, medium_w, long_w, seed);
        assert_column_slicing::<f64>(&csr, width, seed ^ 1, &Executor::seq());
        assert_column_slicing::<f32>(&csr.cast(), width, seed ^ 2, &Executor::seq());
        assert_column_slicing::<F16>(&csr.cast(), width, seed ^ 3, &Executor::seq());
    }

    /// Same contract under a forced-sharding parallel executor, plus
    /// counter parity: merged order-independent counters equal the
    /// sequential run's.
    #[test]
    fn spmm_parallel_matches_sequential(
        seed in 0u64..1000,
        width in 1usize..=12,
    ) {
        let csr = random_matrix(50, 70, 2, 2, 1, seed);
        assert_column_slicing::<f64>(&csr, width, seed ^ 4, &forced_par());

        let d = DaspMatrix::from_csr(&csr);
        let b = random_rhs::<f64>(csr.cols, width, seed ^ 4);
        let mut p_seq = CountingProbe::a100();
        let y_seq = d.spmm_with(&b, &mut p_seq, &Executor::seq());
        let mut p_par = CountingProbe::a100();
        let y_par = d.spmm_with(&b, &mut p_par, &forced_par());
        prop_assert_eq!(y_seq.data(), y_par.data());
        prop_assert_eq!(
            p_seq.stats().order_independent(),
            p_par.stats().order_independent()
        );
    }
}

/// The tentpole's traffic claim, as a hard invariant: A-side bytes
/// (values + indices) per right-hand side strictly decrease as the width
/// grows 1 -> 8, while MMA issues and B-side gathers stay exactly at the
/// looped-SpMV totals.
#[test]
fn a_traffic_per_rhs_strictly_decreases_to_panel_width() {
    let csr = random_matrix(80, 120, 3, 3, 1, 7);
    let d = DaspMatrix::from_csr(&csr);

    let mut spmv_probe = CountingProbe::a100();
    let x = random_rhs::<f64>(csr.cols, 1, 99).column(0);
    d.spmv_with(&x, &mut spmv_probe, &Executor::seq());
    let spmv_stats = spmv_probe.stats();

    let mut last_per_rhs = f64::INFINITY;
    for width in 1..=PANEL_WIDTH {
        let b = random_rhs::<f64>(csr.cols, width, 99);
        let mut probe = CountingProbe::a100();
        d.spmm_with(&b, &mut probe, &Executor::seq());
        let s = probe.stats();
        // One panel sweep streams A exactly once, independent of width.
        assert_eq!(s.bytes_val, spmv_stats.bytes_val, "width {width}");
        assert_eq!(s.bytes_idx, spmv_stats.bytes_idx, "width {width}");
        // MMA issues are per-panel constant: 8 masked-segment issues per
        // block, whatever the live width — equal to looped SpMV at the
        // full 8-column panel, paid in full by partial panels (as the
        // hardware would). B gathers scale exactly with the live width.
        assert_eq!(
            s.mma_ops,
            spmv_stats.mma_ops * PANEL_WIDTH as u64,
            "width {width}"
        );
        assert_eq!(
            s.x_requests,
            spmv_stats.x_requests * width as u64,
            "width {width}"
        );
        let per_rhs = (s.bytes_val + s.bytes_idx) as f64 / width as f64;
        assert!(
            per_rhs < last_per_rhs,
            "A+idx bytes per RHS must strictly decrease: width {width} gives {per_rhs}, previous {last_per_rhs}"
        );
        last_per_rhs = per_rhs;
    }
}

/// Multi-panel widths stream A **once for all panels**: the A-resident
/// sweep keeps each block's values and indices in registers while every
/// RHS panel is issued, so width 16 costs the *same* A bytes as width 8
/// (and as a single SpMV) while MMA issues scale with the panel count.
#[test]
fn multi_panel_widths_stream_a_once_for_all_panels() {
    let csr = random_matrix(60, 80, 3, 2, 1, 11);
    let d = DaspMatrix::from_csr(&csr);
    let stats_at = |width: usize| {
        let b = random_rhs::<f64>(csr.cols, width, 5);
        let mut probe = CountingProbe::a100();
        d.spmm_with(&b, &mut probe, &Executor::seq());
        probe.stats()
    };
    let s8 = stats_at(8);
    let s16 = stats_at(16);
    let s32 = stats_at(32);
    assert_eq!(s16.bytes_val, s8.bytes_val);
    assert_eq!(s16.bytes_idx, s8.bytes_idx);
    assert_eq!(s32.bytes_val, s8.bytes_val);
    assert_eq!(s32.bytes_idx, s8.bytes_idx);
    assert_eq!(s16.mma_ops, 2 * s8.mma_ops);
    assert_eq!(s32.mma_ops, 4 * s8.mma_ops);
}

/// Degenerate shapes: zero-width B, empty matrix.
#[test]
fn degenerate_shapes() {
    let csr = random_matrix(20, 30, 2, 1, 0, 3);
    let d = DaspMatrix::from_csr(&csr);
    let y = d.spmm_with(&DenseMat::zeros(30, 0), &mut NoProbe, &Executor::seq());
    assert_eq!((y.rows(), y.cols()), (20, 0));

    let empty = Coo::<f64>::new(4, 5).to_csr();
    let de = DaspMatrix::from_csr(&empty);
    let y = de.spmm_with(&random_rhs::<f64>(5, 3, 1), &mut NoProbe, &Executor::seq());
    assert!(y.data().iter().all(|v| v.to_bits() == 0));
}

//! Property-based end-to-end checks: DASP SpMV must agree with the CSR
//! reference on arbitrary random matrices, across generators and precisions.

use dasp_core::{DaspMatrix, DaspParams};
use dasp_fp16::F16;
use dasp_simt::NoProbe;
use dasp_sparse::{Coo, Csr};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a random matrix whose row lengths are drawn from a category mix:
/// the proptest inputs steer how many rows fall in each DASP category.
fn random_matrix(
    rows: usize,
    cols: usize,
    short_w: u32,
    medium_w: u32,
    long_w: u32,
    seed: u64,
) -> Csr<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = Coo::new(rows, cols);
    let total = (short_w + medium_w + long_w).max(1);
    for r in 0..rows {
        let dice = rng.gen_range(0..total);
        let len = if dice < short_w {
            rng.gen_range(0..=4usize) // includes empty rows
        } else if dice < short_w + medium_w {
            rng.gen_range(5..=256usize)
        } else {
            rng.gen_range(257..=600usize)
        };
        let len = len.min(cols);
        let mut cs: Vec<usize> = Vec::with_capacity(len);
        while cs.len() < len {
            let c = rng.gen_range(0..cols);
            if !cs.contains(&c) {
                cs.push(c);
            }
        }
        for c in cs {
            coo.push(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    coo.to_csr()
}

fn check_fp64(csr: &Csr<f64>, seed: u64) {
    let d = DaspMatrix::from_csr(csr);
    let mut rng = SmallRng::seed_from_u64(seed);
    let x: Vec<f64> = (0..csr.cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let got = d.spmv(&x, &mut NoProbe);
    let want = csr.spmv_reference(&x);
    for (i, (&a, &b)) in got.iter().zip(&want).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "row {i}: got {a} want {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dasp_matches_reference_on_random_mixes(
        rows in 1usize..150,
        cols in 601usize..900,
        short_w in 0u32..10,
        medium_w in 0u32..10,
        long_w in 0u32..4,
        seed in any::<u64>(),
    ) {
        let csr = random_matrix(rows, cols, short_w, medium_w, long_w, seed);
        check_fp64(&csr, seed ^ 0xabcd);
    }

    #[test]
    fn dasp_matches_reference_with_custom_params(
        rows in 1usize..80,
        seed in any::<u64>(),
        max_len in 8usize..64,
    ) {
        let csr = random_matrix(rows, 200, 3, 3, 1, seed);
        let d = DaspMatrix::with_params(&csr, DaspParams { max_len, ..DaspParams::default() });
        let mut rng = SmallRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let got = d.spmv(&x, &mut NoProbe);
        let want = csr.spmv_reference(&x);
        for (i, (&a, &b)) in got.iter().zip(&want).enumerate() {
            prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "row {i}: {a} vs {b}");
        }
    }

    #[test]
    fn dasp_matches_reference_varying_threshold(
        seed in any::<u64>(),
        threshold in 0.1f64..1.0,
    ) {
        let csr = random_matrix(60, 700, 2, 6, 1, seed);
        let d = DaspMatrix::with_params(&csr, DaspParams { max_len: 256, threshold, ..DaspParams::default() });
        let mut rng = SmallRng::seed_from_u64(!seed);
        let x: Vec<f64> = (0..700).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let got = d.spmv(&x, &mut NoProbe);
        let want = csr.spmv_reference(&x);
        for (i, (&a, &b)) in got.iter().zip(&want).enumerate() {
            prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "row {i}: {a} vs {b}");
        }
    }

    #[test]
    fn fp16_spmv_tracks_fp16_reference(
        rows in 1usize..60,
        seed in any::<u64>(),
    ) {
        let csr = random_matrix(rows, 650, 4, 3, 1, seed);
        let h: Csr<F16> = csr.cast();
        let d = DaspMatrix::from_csr(&h);
        let mut rng = SmallRng::seed_from_u64(seed.rotate_left(13));
        let x: Vec<F16> = (0..650).map(|_| F16::from_f64(rng.gen_range(-1.0..1.0))).collect();
        let got = d.spmv(&x, &mut NoProbe);
        // Reference on the rounded operands in f64.
        let h64: Csr<f64> = h.cast();
        let x64: Vec<f64> = x.iter().map(|v| v.to_f64()).collect();
        let want = h64.spmv_reference(&x64);
        // Row sums are O(600) products of O(1) values; f32 accumulation and
        // the final f16 rounding bound the error.
        for (i, (&a, &b)) in got.iter().zip(&want).enumerate() {
            let tol = 0.05 * b.abs().max(2.0);
            prop_assert!((a.to_f64() - b).abs() <= tol, "row {i}: {a:?} vs {b}");
        }
    }

    #[test]
    fn category_partition_is_exhaustive(
        rows in 1usize..120,
        seed in any::<u64>(),
    ) {
        let csr = random_matrix(rows, 700, 5, 3, 1, seed);
        let d = DaspMatrix::from_csr(&csr);
        let s = d.category_stats();
        prop_assert_eq!(s.rows_long + s.rows_medium + s.rows_short + s.rows_empty, csr.rows);
        prop_assert_eq!(s.nnz_long + s.nnz_medium + s.nnz_short, csr.nnz());
        // Stored sizes are never below the original nonzeros per category.
        prop_assert!(s.stored_long >= s.nnz_long);
        prop_assert!(s.stored_medium >= s.nnz_medium);
        prop_assert!(s.stored_short >= s.nnz_short);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn padded_only_short_rows_match_reference(
        rows in 1usize..200,
        seed in any::<u64>(),
    ) {
        // All-short matrices through the no-piecing ablation path.
        let csr = random_matrix(rows, 300, 5, 0, 0, seed);
        let d = DaspMatrix::with_params(
            &csr,
            DaspParams {
                short_piecing: false,
                ..DaspParams::default()
            },
        );
        // Everything must land in the length-4 (or empty) classes.
        prop_assert_eq!(d.short.n13_warps, 0);
        prop_assert_eq!(d.short.n22_warps, 0);
        prop_assert_eq!(d.short.n1, 0);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x55);
        let x: Vec<f64> = (0..300).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let got = d.spmv(&x, &mut NoProbe);
        let want = csr.spmv_reference(&x);
        for (i, (&a, &b)) in got.iter().zip(&want).enumerate() {
            prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "row {i}: {a} vs {b}");
        }
    }
}

#[test]
fn generator_corpus_smoke() {
    // A non-proptest sweep over structured generators, catching anything
    // the uniform random mix cannot (bands, stencils, power laws).
    let mats: Vec<(&str, Csr<f64>)> = vec![
        ("banded", dasp_matgen::banded(300, 12, 9, 1)),
        ("stencil", dasp_matgen::stencil2d(20, 20, 5, 2)),
        ("rmat", dasp_matgen::rmat(9, 6, 3)),
        ("circuit", dasp_matgen::circuit_like(800, 3, 400, 4)),
        ("rect", dasp_matgen::rectangular_long(10, 900, 300, 5)),
        ("blocks", dasp_matgen::block_dense(128, 4, 2, 6)),
        ("diag", dasp_matgen::diagonal_bands(500, &[0, 1, -1], 7)),
    ];
    for (name, csr) in mats {
        let x = dasp_matgen::dense_vector(csr.cols, 99);
        let d = DaspMatrix::from_csr(&csr);
        let got = d.spmv(&x, &mut NoProbe);
        let want = csr.spmv_reference(&x);
        for (i, (&a, &b)) in got.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "{name} row {i}: got {a} want {b}"
            );
        }
    }
}

//! The executor contract, end to end on the DASP pipeline: for any matrix
//! and any precision, the parallel executor must produce (1) an output
//! vector bit-identical to the sequential one and (2) merged
//! order-independent counters exactly equal to the sequential run's.
//!
//! The parallel executor here is forced to actually shard (threshold 0,
//! four threads) so small proptest matrices exercise the threaded path
//! rather than the inline fallback.

use dasp_core::DaspMatrix;
use dasp_fp16::{Scalar, F16};
use dasp_simt::{CountingProbe, Executor, ParExecutor};
use dasp_sparse::{Coo, Csr};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A parallel executor that always threads, even on tiny grids.
fn forced_par() -> Executor {
    Executor::Par(
        ParExecutor::new()
            .with_threads(Some(4))
            .with_seq_threshold(0),
    )
}

/// Random matrix with a steerable short/medium/long row-length mix, so the
/// proptest inputs cover every DASP category combination.
fn random_matrix(
    rows: usize,
    cols: usize,
    short_w: u32,
    medium_w: u32,
    long_w: u32,
    seed: u64,
) -> Csr<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = Coo::new(rows, cols);
    let total = (short_w + medium_w + long_w).max(1);
    for r in 0..rows {
        let dice = rng.gen_range(0..total);
        let len = if dice < short_w {
            rng.gen_range(0..=4usize) // includes empty rows
        } else if dice < short_w + medium_w {
            rng.gen_range(5..=256usize)
        } else {
            rng.gen_range(257..=600usize)
        };
        let len = len.min(cols);
        let mut cs: Vec<usize> = Vec::with_capacity(len);
        while cs.len() < len {
            let c = rng.gen_range(0..cols);
            if !cs.contains(&c) {
                cs.push(c);
            }
        }
        for c in cs {
            coo.push(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    coo.to_csr()
}

/// Runs the full DASP pipeline at precision `S` under both executors and
/// asserts the contract.
fn assert_parity<S: Scalar>(csr: &Csr<S>, seed: u64) {
    let d = DaspMatrix::from_csr(csr);
    let mut rng = SmallRng::seed_from_u64(seed);
    let x: Vec<S> = (0..csr.cols)
        .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
        .collect();

    let mut p_seq = CountingProbe::a100();
    let y_seq = d.spmv_with(&x, &mut p_seq, &Executor::seq());
    let mut p_par = CountingProbe::a100();
    let y_par = d.spmv_with(&x, &mut p_par, &forced_par());

    // (1) Bit-identical output.
    let bits_seq: Vec<f64> = y_seq.iter().map(|v| v.to_f64()).collect();
    let bits_par: Vec<f64> = y_par.iter().map(|v| v.to_f64()).collect();
    for (i, (a, b)) in bits_seq.iter().zip(&bits_par).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "row {i}: seq {a} vs par {b} (not bit-identical)"
        );
    }
    // (2) Exactly equal merged order-independent counters.
    assert_eq!(
        p_seq.stats().order_independent(),
        p_par.stats().order_independent(),
        "order-independent counters diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fp64_parallel_is_bit_identical(
        rows in 1usize..150,
        cols in 601usize..900,
        short_w in 0u32..10,
        medium_w in 0u32..10,
        long_w in 0u32..4,
        seed in any::<u64>(),
    ) {
        let csr = random_matrix(rows, cols, short_w, medium_w, long_w, seed);
        assert_parity::<f64>(&csr, seed ^ 0x1111);
    }

    #[test]
    fn fp32_parallel_is_bit_identical(
        rows in 1usize..120,
        short_w in 0u32..8,
        medium_w in 0u32..8,
        long_w in 0u32..3,
        seed in any::<u64>(),
    ) {
        let csr = random_matrix(rows, 700, short_w, medium_w, long_w, seed);
        let c32: Csr<f32> = csr.cast();
        assert_parity::<f32>(&c32, seed ^ 0x2222);
    }

    #[test]
    fn fp16_parallel_is_bit_identical(
        rows in 1usize..100,
        short_w in 0u32..8,
        medium_w in 0u32..8,
        long_w in 0u32..3,
        seed in any::<u64>(),
    ) {
        let csr = random_matrix(rows, 650, short_w, medium_w, long_w, seed);
        let c16: Csr<F16> = csr.cast();
        assert_parity::<F16>(&c16, seed ^ 0x3333);
    }
}

#[test]
fn structured_corpus_parity() {
    // Structured generators catch layouts the uniform mix cannot.
    let mats: Vec<(&str, Csr<f64>)> = vec![
        ("banded", dasp_matgen::banded(300, 12, 9, 1)),
        ("stencil", dasp_matgen::stencil2d(20, 20, 5, 2)),
        ("rmat", dasp_matgen::rmat(9, 6, 3)),
        ("circuit", dasp_matgen::circuit_like(800, 3, 400, 4)),
        ("rect", dasp_matgen::rectangular_long(10, 900, 300, 5)),
        ("blocks", dasp_matgen::block_dense(128, 4, 2, 6)),
        ("diag", dasp_matgen::diagonal_bands(500, &[0, 1, -1], 7)),
        ("empty", Csr::empty(40, 40)),
    ];
    for (name, csr) in mats {
        println!("structured corpus: {name}");
        assert_parity::<f64>(&csr, 99);
    }
}

//! Property-based checks of the analysis/execute split: for random
//! mixed-category matrices across every storage precision,
//! `DaspPlan::fill` must equal `DaspMatrix::from_csr` bit for bit,
//! `update_values` must equal a full rebuild bit for bit across successive
//! value sets, and a plan-cache hit must return an identical matrix.
//!
//! Runs under whichever executor `DASP_EXECUTOR`/`DASP_THREADS` selects
//! (CI exercises both), and cross-checks seq against par explicitly.

use dasp_core::{DaspMatrix, DaspParams, DaspPlan, PlanCache};
use dasp_fp16::{Scalar, F16};
use dasp_simt::Executor;
use dasp_sparse::{Coo, Csr};
use dasp_trace::Tracer;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a random matrix whose row lengths are drawn from a category mix
/// (same scheme as `random_matrices.rs`, including empty rows).
fn random_matrix(
    rows: usize,
    cols: usize,
    short_w: u32,
    medium_w: u32,
    long_w: u32,
    seed: u64,
) -> Csr<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = Coo::new(rows, cols);
    let total = (short_w + medium_w + long_w).max(1);
    for r in 0..rows {
        let dice = rng.gen_range(0..total);
        let len = if dice < short_w {
            rng.gen_range(0..=4usize) // includes empty rows
        } else if dice < short_w + medium_w {
            rng.gen_range(5..=256usize)
        } else {
            rng.gen_range(257..=600usize)
        };
        let len = len.min(cols);
        let mut cs: Vec<usize> = Vec::with_capacity(len);
        while cs.len() < len {
            let c = rng.gen_range(0..cols);
            if !cs.contains(&c) {
                cs.push(c);
            }
        }
        for c in cs {
            coo.push(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    coo.to_csr()
}

/// Fresh values for the same pattern.
fn perturbed<S: Scalar>(csr: &Csr<S>, seed: u64) -> Vec<S> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..csr.nnz())
        .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
        .collect()
}

/// The three tentpole properties at one precision.
fn check_at<S: Scalar>(csr: &Csr<S>, params: DaspParams, seed: u64) {
    // 1. Analysis + fill is bit-identical to the direct build.
    let direct = DaspMatrix::with_params(csr, params);
    let plan = DaspPlan::analyze(csr, params);
    let mut filled = plan.fill(csr);
    assert_eq!(filled, direct, "fill != from_csr");

    // 2. update_values == full rebuild, across 3 successive value sets.
    for round in 0..3u64 {
        let vals = perturbed(csr, seed ^ (round + 1).wrapping_mul(0x9e37_79b9));
        filled.update_values(&vals).expect("refresh applies");
        let mut rebuilt_csr = csr.clone();
        rebuilt_csr.vals = vals;
        let rebuilt = DaspMatrix::with_params(&rebuilt_csr, params);
        assert_eq!(filled, rebuilt, "update_values != rebuild (round {round})");
    }

    // 3. A plan-cache hit returns an identical matrix, through the same
    // plan object.
    let cache = PlanCache::new();
    let first = DaspMatrix::with_params_cached(csr, params, &cache);
    let second = DaspMatrix::with_params_cached(csr, params, &cache);
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), 1);
    assert_eq!(first, direct);
    assert_eq!(second, direct);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn plan_fill_and_refresh_match_rebuild_fp64(
        rows in 1usize..120,
        cols in 601usize..900,
        short_w in 0u32..10,
        medium_w in 0u32..10,
        long_w in 0u32..4,
        seed in any::<u64>(),
    ) {
        let csr = random_matrix(rows, cols, short_w, medium_w, long_w, seed);
        check_at::<f64>(&csr, DaspParams::default(), seed);
    }

    #[test]
    fn plan_fill_and_refresh_match_rebuild_fp32_fp16(
        rows in 1usize..80,
        short_w in 0u32..8,
        medium_w in 0u32..8,
        long_w in 0u32..3,
        seed in any::<u64>(),
    ) {
        let csr = random_matrix(rows, 700, short_w, medium_w, long_w, seed);
        check_at::<f32>(&csr.cast(), DaspParams::default(), seed);
        check_at::<F16>(&csr.cast(), DaspParams::default(), seed);
    }

    #[test]
    fn plan_parity_holds_for_custom_params(
        rows in 1usize..80,
        max_len in 8usize..64,
        piecing in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let csr = random_matrix(rows, 200, 3, 3, 1, seed);
        let params = DaspParams { max_len, short_piecing: piecing, ..DaspParams::default() };
        check_at::<f64>(&csr, params, seed);
    }

    #[test]
    fn seq_and_par_analysis_agree(
        rows in 1usize..100,
        short_w in 0u32..8,
        medium_w in 0u32..8,
        long_w in 0u32..3,
        seed in any::<u64>(),
    ) {
        let csr = random_matrix(rows, 700, short_w, medium_w, long_w, seed);
        let params = DaspParams::default();
        let seq = DaspPlan::analyze_traced_with(
            &csr, params, &Tracer::disabled(), &Executor::seq());
        let par = DaspPlan::analyze_traced_with(
            &csr, params, &Tracer::disabled(), &Executor::par_with_threads(Some(4)));
        prop_assert!(*seq == *par, "seq and par plans differ");
        let a = seq.fill_traced_with(&csr, &Tracer::disabled(), &Executor::seq());
        let b = par.fill_traced_with(&csr, &Tracer::disabled(), &Executor::par_with_threads(Some(4)));
        prop_assert!(a == b, "seq and par fills differ");
    }
}

//! A walkthrough of the paper's Fig. 5 example: a 20x20 matrix whose rows
//! split into long, medium and short categories, checked against the
//! blocking rules the figure illustrates.
//!
//! Fig. 5 draws 2x4 blocks for readability ("assuming m2n2k4"); the real
//! format uses 8x4. This test keeps the figure's *row structure* — two very
//! long rows, a band of medium rows, and an assortment of short rows — and
//! scales the category boundary down (`max_len = 8`) so a 20-column matrix
//! can exercise all three categories exactly as the figure does.

use dasp_core::{DaspMatrix, DaspParams};
use dasp_simt::NoProbe;
use dasp_sparse::{Coo, Csr};

/// Rows: 0 and 1 long (> 8 nonzeros), 2..=9 medium (5..=8), 10..=19 short
/// (lengths cycling 1, 2, 3, 4, and one empty).
fn figure5_like() -> Csr<f64> {
    let mut m = Coo::<f64>::new(20, 20);
    let mut v = 0.0;
    let mut push = |r: usize, c: usize, m: &mut Coo<f64>| {
        v += 0.25;
        m.push(r, c, v);
    };
    for c in 0..17 {
        push(0, c, &mut m); // long: 17 nonzeros
    }
    for c in 0..12 {
        push(1, c, &mut m); // long: 12 nonzeros
    }
    for r in 2..10 {
        for k in 0..(5 + r % 4) {
            push(r, (r + 2 * k) % 20, &mut m); // medium: 5..=8
        }
    }
    for r in 10..19 {
        let len = r % 4 + 1; // 1..=4 cycling; row 19 left empty
        for k in 0..len {
            push(r, (r + 3 * k) % 20, &mut m);
        }
    }
    m.to_csr()
}

fn params() -> DaspParams {
    DaspParams {
        max_len: 8,
        ..DaspParams::default()
    }
}

#[test]
fn rows_fall_into_the_figures_categories() {
    let csr = figure5_like();
    let d = DaspMatrix::with_params(&csr, params());
    d.validate().unwrap();

    assert_eq!(d.long.rows, vec![0, 1], "rows 0 and 1 are the long rows");
    // Medium rows, sorted descending by length (stable).
    let mut med: Vec<u32> = d.medium.rows.clone();
    med.sort_unstable();
    assert_eq!(med, (2u32..10).collect::<Vec<_>>());
    let lens: Vec<usize> = d
        .medium
        .rows
        .iter()
        .map(|&r| csr.row_len(r as usize))
        .collect();
    assert!(lens.windows(2).all(|w| w[0] >= w[1]), "sorted descending");

    let s = d.category_stats();
    assert_eq!(s.rows_short, 9, "rows 10..19 minus the empty one");
    assert_eq!(s.rows_empty, 1);
}

#[test]
fn long_rows_are_grouped_in_64s_with_padding() {
    let d = DaspMatrix::with_params(&figure5_like(), params());
    // 17 and 12 nonzeros -> one 64-element group each, zero padded.
    assert_eq!(d.long.group_ptr, vec![0, 1, 2]);
    assert_eq!(d.long.vals.len(), 128);
    let pad = d.long.vals.iter().filter(|&&v| v == 0.0).count();
    assert_eq!(pad, 128 - 17 - 12);
}

#[test]
fn short_rows_are_pieced_like_the_figure() {
    let d = DaspMatrix::with_params(&figure5_like(), params());
    // Short lengths present: rows 10..19 cycle r%4+1 minus the empty row 19
    // (19 % 4 + 1 = 4... row 19 is empty because the loop stops at 19).
    // Lengths: r=10->3, 11->4, 12->1, 13->2, 14->3, 15->4, 16->1, 17->2, 18->3.
    // 1&3 piecing pairs the two 1s with two of the three 3s; the leftover 3
    // is padded into the 4s; the two 2s pair in 2&2.
    assert_eq!(d.short.n13_warps, 1);
    assert_eq!(d.short.n4_warps, 1); // two real 4s + one padded 3
    assert_eq!(d.short.n22_warps, 1);
    assert_eq!(d.short.n1, 0, "every 1 found a 3 to piece with");
    let s = d.category_stats();
    assert_eq!(s.nnz_short, 3 + 4 + 1 + 2 + 3 + 4 + 1 + 2 + 3);
}

#[test]
fn the_example_computes_correctly_through_all_categories() {
    let csr = figure5_like();
    let d = DaspMatrix::with_params(&csr, params());
    let x: Vec<f64> = (0..20).map(|i| 1.0 + i as f64 * 0.1).collect();
    let y = d.spmv(&x, &mut NoProbe);
    let want = csr.spmv_reference(&x);
    for (i, (&a, &b)) in y.iter().zip(&want).enumerate() {
        assert!((a - b).abs() < 1e-12, "row {i}: {a} vs {b}");
    }
    assert_eq!(y[19], 0.0, "the empty row stays zero");
    // And the format reconstructs the matrix exactly.
    assert_eq!(d.to_csr(), csr);
}

//! The row-similarity reordering contract.
//!
//! `DaspParams::reorder` is a *plan-level* transform: among medium rows
//! of equal length, the stable descending sort is tie-broken by a
//! minhash signature of each row's column set, so rows that touch the
//! same x entries land in the same 8-row MMA block. Everything a caller
//! can observe except x-cache traffic must be unchanged:
//!
//! * results are bit-identical with the flag on or off, for SpMV and
//!   every SpMM width, sequential or parallel;
//! * the fill rate and slot count never move — the format geometry
//!   depends only on the *sorted length sequence*, which reorder (a
//!   pure tie-break) cannot alter;
//! * the flag rides in the container and plan headers and in the plan
//!   cache key, so a cached/deserialized plan is never silently applied
//!   with the wrong permutation.

use dasp_core::{DaspMatrix, DaspParams, DaspPlan, PlanCache};
use dasp_fp16::{Scalar, F16};
use dasp_simt::{CacheModel, CountingProbe, Executor, NoProbe, ParExecutor};
use dasp_sparse::{Coo, Csr, DenseMat};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn reorder_params() -> DaspParams {
    DaspParams {
        reorder: true,
        ..DaspParams::default()
    }
}

fn forced_par() -> Executor {
    Executor::Par(
        ParExecutor::new()
            .with_threads(Some(4))
            .with_seq_threshold(0),
    )
}

/// Random matrix dominated by medium rows (where reorder acts), with
/// enough short and long rows to exercise the category boundaries.
fn medium_heavy(rows: usize, cols: usize, seed: u64) -> Csr<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = Coo::new(rows, cols);
    for r in 0..rows {
        let len = match rng.gen_range(0..10u32) {
            0 => rng.gen_range(0..=4usize),
            1 => rng.gen_range(257..=400usize),
            _ => rng.gen_range(5..=256usize),
        }
        .min(cols);
        let mut cs: Vec<usize> = Vec::with_capacity(len);
        while cs.len() < len {
            let c = rng.gen_range(0..cols);
            if !cs.contains(&c) {
                cs.push(c);
            }
        }
        for c in cs {
            coo.push(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    coo.to_csr()
}

fn random_rhs<S: Scalar>(cols: usize, width: usize, seed: u64) -> DenseMat<S> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let columns: Vec<Vec<S>> = (0..width)
        .map(|_| {
            (0..cols)
                .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
                .collect()
        })
        .collect();
    DenseMat::from_columns(&columns)
}

fn assert_bit_identical<S: Scalar>(csr: &Csr<S>, width: usize, seed: u64, exec: &Executor) {
    let plain = DaspMatrix::from_csr(csr);
    let reordered = DaspMatrix::with_params(csr, reorder_params());
    reordered
        .validate()
        .expect("reordered format is well-formed");

    let x: Vec<S> = random_rhs::<S>(csr.cols, 1, seed).column(0);
    let y0 = plain.spmv_with(&x, &mut NoProbe, exec);
    let y1 = reordered.spmv_with(&x, &mut NoProbe, exec);
    for (r, (a, b)) in y0.iter().zip(&y1).enumerate() {
        assert_eq!(
            a.to_f64().to_bits(),
            b.to_f64().to_bits(),
            "spmv row {r} differs under reorder"
        );
    }

    let b = random_rhs::<S>(csr.cols, width, seed ^ 1);
    let z0 = plain.spmm_with(&b, &mut NoProbe, exec);
    let z1 = reordered.spmm_with(&b, &mut NoProbe, exec);
    assert_eq!(z0.data(), z1.data(), "spmm width {width} differs");
}

#[test]
fn results_bit_identical_with_and_without_reorder() {
    for seed in [1u64, 5, 9] {
        let csr = medium_heavy(120, 160, seed);
        for exec in [Executor::seq(), forced_par()] {
            assert_bit_identical::<f64>(&csr, 20, seed, &exec);
            assert_bit_identical::<f32>(&csr.cast(), 20, seed, &exec);
            assert_bit_identical::<F16>(&csr.cast(), 20, seed, &exec);
        }
    }
}

/// The geometry proof, checked: `MediumPart::build_csr` consumes only
/// the sorted row-length sequence, so a permutation among equal-length
/// rows can never change slot counts or fill rate.
#[test]
fn reorder_never_changes_fill_rate_or_slots() {
    for (name, csr) in [
        ("rmat", dasp_matgen::rmat(9, 8, 3)),
        ("uniform", dasp_matgen::uniform_random(500, 500, 24, 4)),
        ("circuit", dasp_matgen::circuit_like(600, 12, 300, 5)),
        ("medium_heavy", medium_heavy(300, 300, 11)),
    ] {
        let p0 = DaspPlan::analyze(&csr, DaspParams::default());
        let p1 = DaspPlan::analyze(&csr, reorder_params());
        assert_eq!(p0.total_slots(), p1.total_slots(), "{name}: slots moved");
        let m0 = p0.fill(&csr);
        let m1 = p1.fill(&csr);
        assert_eq!(
            m0.category_stats().fill_rate().to_bits(),
            m1.category_stats().fill_rate().to_bits(),
            "{name}: fill rate moved"
        );
        assert_eq!(m0.memory_bytes(), m1.memory_bytes(), "{name}: bytes moved");
    }
}

/// The x-locality payoff reorder exists for: equal-length medium rows
/// drawn from two disjoint column clusters, interleaved so the stable
/// length sort alone keeps every 8-row block half-and-half. Reorder must
/// bucket each cluster into its own blocks and cut modeled x-miss
/// traffic under a cache small enough that one cluster's working set
/// fits but the union of both thrashes (the full A100 L2 dwarfs any
/// test-sized x, where every miss is compulsory and order-free).
#[test]
fn reorder_reduces_x_miss_traffic_on_clustered_rows() {
    let rows = 128;
    let cols = 4096;
    let len = 48;
    let window = 1024usize; // 8 KiB of f64 per cluster
    let mut coo = Coo::new(rows, cols);
    let mut rng = SmallRng::seed_from_u64(17);
    for r in 0..rows {
        // Even rows sample cluster A (low columns), odd rows cluster B
        // (high columns); within a cluster the sets overlap heavily.
        let base = if r % 2 == 0 { 0 } else { cols / 2 };
        let mut cs: Vec<usize> = Vec::with_capacity(len);
        while cs.len() < len {
            let c = base + rng.gen_range(0..window);
            if !cs.contains(&c) {
                cs.push(c);
            }
        }
        for c in cs {
            coo.push(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    let csr: Csr<f64> = coo.to_csr();
    let x: Vec<f64> = (0..cols).map(|i| (i as f64).sin()).collect();

    let small_cache = || CacheModel::new(8 * 1024, 64, 4);
    let mut p0 = CountingProbe::new(small_cache());
    let y0 = DaspMatrix::from_csr(&csr).spmv(&x, &mut p0);
    let mut p1 = CountingProbe::new(small_cache());
    let y1 = DaspMatrix::with_params(&csr, reorder_params()).spmv(&x, &mut p1);

    assert_eq!(y0, y1);
    let (miss0, miss1) = (p0.stats().bytes_x_miss, p1.stats().bytes_x_miss);
    assert!(
        miss1 < miss0,
        "reorder should cut x misses on clustered rows: {miss0} -> {miss1}"
    );
    // Everything that is not x traffic is untouched by the permutation.
    assert_eq!(p0.stats().bytes_val, p1.stats().bytes_val);
    assert_eq!(p0.stats().bytes_idx, p1.stats().bytes_idx);
    assert_eq!(p0.stats().mma_ops, p1.stats().mma_ops);
}

#[test]
fn reorder_flag_round_trips_through_matrix_and_plan_serialization() {
    let csr = medium_heavy(90, 110, 21);
    for reorder in [false, true] {
        let params = DaspParams {
            reorder,
            ..DaspParams::default()
        };
        let m = DaspMatrix::with_params(&csr, params);
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        let back = DaspMatrix::<f64>::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.params.reorder, reorder, "matrix header lost flag");
        let x = dasp_matgen::dense_vector(csr.cols, 3);
        assert_eq!(m.spmv(&x, &mut NoProbe), back.spmv(&x, &mut NoProbe));

        let plan = DaspPlan::analyze(&csr, params);
        let mut pbuf = Vec::new();
        plan.write_to(&mut pbuf).unwrap();
        let pback = DaspPlan::read_from(&mut pbuf.as_slice()).unwrap();
        assert_eq!(pback.params().reorder, reorder, "plan header lost flag");
        // The round-tripped plan refills to the same matrix, permutation
        // included.
        let refilled = pback.fill(&csr);
        assert_eq!(m.spmv(&x, &mut NoProbe), refilled.spmv(&x, &mut NoProbe));
    }
}

/// A reorder-off container written today must be byte-identical to one
/// written before the flag existed (the header word it occupies was
/// reserved-zero), and the flag must flow through the reserved word.
#[test]
fn reorder_off_serialization_keeps_reserved_word_zero() {
    let csr = medium_heavy(40, 60, 31);
    let mut off = Vec::new();
    DaspMatrix::with_params(&csr, DaspParams::default())
        .write_to(&mut off)
        .unwrap();
    let mut on = Vec::new();
    DaspMatrix::with_params(&csr, reorder_params())
        .write_to(&mut on)
        .unwrap();
    assert_eq!(off.len(), on.len(), "flag must not change container size");
    let diff: Vec<usize> = off
        .iter()
        .zip(&on)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, _)| i)
        .collect();
    assert!(
        !diff.is_empty() && diff.len() <= 8 + csr.rows * 4,
        "flag flip may touch the flags word and the medium permutation only, \
         changed {} bytes",
        diff.len()
    );
}

#[test]
fn plan_cache_distinguishes_reorder() {
    let csr = medium_heavy(80, 100, 41);
    let cache = PlanCache::new();
    let p_off = cache.plan_for(&csr, DaspParams::default());
    let p_on = cache.plan_for(&csr, reorder_params());
    assert_eq!(cache.misses(), 2, "reorder on/off must not share a plan");
    assert!(!std::sync::Arc::ptr_eq(&p_off, &p_on));
    let again = cache.plan_for(&csr, reorder_params());
    assert_eq!(cache.hits(), 1);
    assert!(std::sync::Arc::ptr_eq(&p_on, &again));
}

/// `update_values` must honor the stored permutation: refreshing a
/// reordered matrix with new values matches a fresh reordered build.
#[test]
fn update_values_respects_reordered_permutation() {
    let csr = medium_heavy(100, 120, 51);
    let mut m = DaspPlan::analyze(&csr, reorder_params()).fill(&csr);
    let mut rng = SmallRng::seed_from_u64(52);
    let new_vals: Vec<f64> = (0..csr.vals.len())
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    m.update_values(&new_vals).unwrap();

    let mut fresh_csr = csr.clone();
    fresh_csr.vals = new_vals;
    let fresh = DaspMatrix::with_params(&fresh_csr, reorder_params());
    let x = dasp_matgen::dense_vector(csr.cols, 7);
    assert_eq!(m.spmv(&x, &mut NoProbe), fresh.spmv(&x, &mut NoProbe));
}

/// A reordered matrix must pass every sanitizer check (race, mask,
/// init) that the regular build passes: the permutation only renames
/// which original row each block slot points at, never the access
/// discipline.
#[test]
fn reordered_kernels_are_sanitize_clean() {
    let csr = medium_heavy(150, 180, 61);
    let m = DaspMatrix::with_params(&csr, reorder_params());
    let b = random_rhs::<f64>(csr.cols, 20, 62);
    let mut probe = dasp_sanitize::SanitizeProbe::new(CountingProbe::a100());
    let _ = m.spmm_with(&b, &mut probe, &Executor::seq());
    let x = b.column(0);
    let _ = m.spmv_with(&x, &mut probe, &Executor::seq());
    let report = probe.report();
    assert!(report.is_clean(), "{report}");
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

    /// Arbitrary width x reorder x executor: the SpMM result must match
    /// column-by-column SpMV of the *same build* bit for bit, and the
    /// reordered build must match the plain build bit for bit.
    #[test]
    fn any_width_reorder_matches_columnwise_spmv(
        seed in 0u64..1000,
        width in 1usize..=20,
        par in proptest::prelude::any::<bool>(),
    ) {
        let csr = medium_heavy(60, 80, seed);
        let exec = if par { forced_par() } else { Executor::seq() };
        let plain = DaspMatrix::from_csr(&csr);
        let reordered = DaspMatrix::with_params(&csr, reorder_params());
        let b = random_rhs::<f64>(csr.cols, width, seed ^ 7);
        let z0 = plain.spmm_with(&b, &mut NoProbe, &exec);
        let z1 = reordered.spmm_with(&b, &mut NoProbe, &exec);
        proptest::prop_assert_eq!(z0.data(), z1.data());
        for j in 0..width {
            let y = reordered.spmv_with(&b.column(j), &mut NoProbe, &exec);
            for (r, yv) in y.iter().enumerate() {
                proptest::prop_assert_eq!(
                    z1.get(r, j).to_bits(),
                    yv.to_bits(),
                    "col {} row {}", j, r
                );
            }
        }
    }
}

//! The batched-probe contract, end to end on the DASP pipeline: every
//! warp-granular hook (`load_x_warp`, `san_*_warp`, `divergence_warp`)
//! is defined as per-element-equivalent, so running the kernels against
//! a probe that only implements the *per-element* hooks — forcing the
//! trait's default decomposition of every batched call — must produce
//! exactly the same [`KernelStats`] as the natively-batching
//! [`CountingProbe`], **including** the cache-order-dependent fields
//! (`x_hits`, `x_misses`, `bytes_x_miss`).
//!
//! This pins the refactor's central invariant: batching changed how many
//! probe calls the kernels make, never which element accesses they
//! describe or the order they describe them in.

use dasp_core::DaspMatrix;
use dasp_fp16::{Scalar, F16};
use dasp_simt::{CountingProbe, Executor, KernelStats, ParExecutor, Probe, ShardableProbe};
use dasp_sparse::{Coo, Csr, DenseMat};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Wraps a [`CountingProbe`] but forwards **only** the per-element hooks:
/// the `Probe` trait's default batched implementations then decompose
/// every `*_warp` call a kernel makes back into scalar calls on the
/// inner probe, reproducing the pre-refactor call sequence exactly.
struct PerElementOnly(CountingProbe);

impl Probe for PerElementOnly {
    fn kernel_launch(&mut self, blocks: u64, warps_per_block: u64) {
        self.0.kernel_launch(blocks, warps_per_block)
    }
    fn load_val(&mut self, elems: u64, bytes_per: u64) {
        self.0.load_val(elems, bytes_per)
    }
    fn load_idx(&mut self, elems: u64, bytes_per: u64) {
        self.0.load_idx(elems, bytes_per)
    }
    fn load_meta(&mut self, elems: u64, bytes_per: u64) {
        self.0.load_meta(elems, bytes_per)
    }
    fn store_y(&mut self, elems: u64, bytes_per: u64) {
        self.0.store_y(elems, bytes_per)
    }
    fn load_x(&mut self, index: usize, bytes_per: u64) {
        self.0.load_x(index, bytes_per)
    }
    fn mma(&mut self) {
        self.0.mma()
    }
    fn fma(&mut self, n: u64) {
        self.0.fma(n)
    }
    fn shfl(&mut self, n: u64) {
        self.0.shfl(n)
    }
    fn warp_begin(&mut self, warp_id: usize) {
        self.0.warp_begin(warp_id)
    }
    fn warp_end(&mut self, warp_id: usize) {
        self.0.warp_end(warp_id)
    }
    fn divergence(&mut self, inactive: u64) {
        self.0.divergence(inactive)
    }
    fn stats_snapshot(&self) -> KernelStats {
        self.0.stats_snapshot()
    }
    // Deliberately NO batched-hook overrides: `load_x_warp`,
    // `san_write_warp`, `san_read_warp`, and `divergence_warp` all fall
    // back to the trait defaults, which loop the scalar hooks above.
}

impl ShardableProbe for PerElementOnly {
    fn fork_shard(&self) -> Self {
        PerElementOnly(self.0.fork_shard())
    }
    fn merge_shard(&mut self, shard: Self) {
        self.0.merge_shard(shard.0)
    }
}

/// A parallel executor that always threads, even on tiny grids.
fn forced_par() -> Executor {
    Executor::Par(
        ParExecutor::new()
            .with_threads(Some(4))
            .with_seq_threshold(0),
    )
}

/// Random matrix with a steerable short/medium/long row-length mix, so
/// the inputs cover every DASP kernel (long, medium, and all four short
/// sub-kernels).
fn random_matrix(
    rows: usize,
    cols: usize,
    short_w: u32,
    medium_w: u32,
    long_w: u32,
    seed: u64,
) -> Csr<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = Coo::new(rows, cols);
    let total = (short_w + medium_w + long_w).max(1);
    for r in 0..rows {
        let dice = rng.gen_range(0..total);
        let len = if dice < short_w {
            rng.gen_range(0..=4usize) // includes empty rows
        } else if dice < short_w + medium_w {
            rng.gen_range(5..=256usize)
        } else {
            rng.gen_range(257..=600usize)
        };
        let len = len.min(cols);
        let mut cs: Vec<usize> = Vec::with_capacity(len);
        while cs.len() < len {
            let c = rng.gen_range(0..cols);
            if !cs.contains(&c) {
                cs.push(c);
            }
        }
        for c in cs {
            coo.push(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    coo.to_csr()
}

/// Runs the full SpMV + SpMM pipeline at precision `S` under `exec`
/// twice — natively batched vs. forced per-element decomposition — and
/// asserts the stats are field-for-field identical (cache classification
/// included) and the outputs bit-identical.
fn assert_batched_parity<S: Scalar>(csr: &Csr<S>, seed: u64, exec: &Executor) {
    let d = DaspMatrix::from_csr(csr);
    let mut rng = SmallRng::seed_from_u64(seed);
    let x: Vec<S> = (0..csr.cols)
        .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
        .collect();

    let mut batched = CountingProbe::a100();
    let y_batched = d.spmv_with(&x, &mut batched, exec);
    let mut scalar = PerElementOnly(CountingProbe::a100());
    let y_scalar = d.spmv_with(&x, &mut scalar, exec);

    for (i, (a, b)) in y_batched.iter().zip(&y_scalar).enumerate() {
        assert_eq!(
            a.to_f64().to_bits(),
            b.to_f64().to_bits(),
            "spmv row {i} diverged between probe paths"
        );
    }
    assert_eq!(
        batched.stats(),
        scalar.0.stats(),
        "spmv stats diverged between batched and per-element probe paths"
    );

    // SpMM over a 3-wide panel drives the multi-RHS kernel family.
    let columns: Vec<Vec<S>> = (0..3)
        .map(|_| {
            (0..csr.cols)
                .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
                .collect()
        })
        .collect();
    let b = DenseMat::from_columns(&columns);
    let mut batched = CountingProbe::a100();
    let ym_batched = d.spmm_with(&b, &mut batched, exec);
    let mut scalar = PerElementOnly(CountingProbe::a100());
    let ym_scalar = d.spmm_with(&b, &mut scalar, exec);

    for j in 0..3 {
        let (cb, cs) = (ym_batched.column(j), ym_scalar.column(j));
        for r in 0..csr.rows {
            assert_eq!(
                cb[r].to_f64().to_bits(),
                cs[r].to_f64().to_bits(),
                "spmm column {j} row {r} diverged between probe paths"
            );
        }
    }
    assert_eq!(
        batched.stats(),
        scalar.0.stats(),
        "spmm stats diverged between batched and per-element probe paths"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fp64_batched_probe_is_bit_identical(
        rows in 1usize..120,
        cols in 601usize..900,
        short_w in 0u32..10,
        medium_w in 0u32..10,
        long_w in 0u32..4,
        seed in any::<u64>(),
    ) {
        let csr = random_matrix(rows, cols, short_w, medium_w, long_w, seed);
        assert_batched_parity::<f64>(&csr, seed ^ 0xA5A5, &Executor::seq());
        assert_batched_parity::<f64>(&csr, seed ^ 0xA5A5, &forced_par());
    }

    #[test]
    fn fp32_batched_probe_is_bit_identical(
        rows in 1usize..100,
        short_w in 0u32..8,
        medium_w in 0u32..8,
        long_w in 0u32..3,
        seed in any::<u64>(),
    ) {
        let csr64 = random_matrix(rows, 700, short_w, medium_w, long_w, seed);
        let csr: Csr<f32> = csr64.cast();
        assert_batched_parity::<f32>(&csr, seed ^ 0x5A5A, &Executor::seq());
        assert_batched_parity::<f32>(&csr, seed ^ 0x5A5A, &forced_par());
    }

    #[test]
    fn fp16_batched_probe_is_bit_identical(
        rows in 1usize..100,
        short_w in 0u32..8,
        medium_w in 0u32..8,
        long_w in 0u32..3,
        seed in any::<u64>(),
    ) {
        let csr64 = random_matrix(rows, 700, short_w, medium_w, long_w, seed);
        let csr: Csr<F16> = csr64.cast();
        assert_batched_parity::<F16>(&csr, seed ^ 0x3C3C, &Executor::seq());
        assert_batched_parity::<F16>(&csr, seed ^ 0x3C3C, &forced_par());
    }
}

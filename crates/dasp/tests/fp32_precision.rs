//! FP32 (TF32-modeled) precision through the whole DASP pipeline — a
//! library extension beyond the paper's FP64/FP16 evaluation, covering the
//! precision regime of AlphaSparse (which the paper mentions in §4.1).

use dasp_core::DaspMatrix;
use dasp_simt::NoProbe;
use dasp_sparse::Csr;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Csr<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = dasp_sparse::Coo::<f32>::new(rows, cols);
    for r in 0..rows {
        let len = match rng.gen_range(0..10) {
            0 => 0,
            1..=5 => rng.gen_range(1..=4usize),
            6..=8 => rng.gen_range(5..=256),
            _ => rng.gen_range(257..=500),
        }
        .min(cols);
        let mut cs: Vec<usize> = Vec::new();
        while cs.len() < len {
            let c = rng.gen_range(0..cols);
            if !cs.contains(&c) {
                cs.push(c);
            }
        }
        for c in cs {
            coo.push(r, c, rng.gen_range(-1.0f32..1.0));
        }
    }
    coo.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fp32_dasp_matches_reference(rows in 1usize..120, seed in any::<u64>()) {
        let csr = random_matrix(rows, 600, seed);
        let d = DaspMatrix::from_csr(&csr);
        prop_assert!(d.validate().is_ok());
        let mut rng = SmallRng::seed_from_u64(!seed);
        let x: Vec<f32> = (0..600).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let got = d.spmv(&x, &mut NoProbe);
        let want = csr.spmv_reference(&x);
        for (i, (&a, &b)) in got.iter().zip(&want).enumerate() {
            // f32 accumulation order differences bound the error.
            prop_assert!(
                ((a as f64) - b).abs() <= 1e-4 * b.abs().max(1.0),
                "row {}: {} vs {}", i, a, b
            );
        }
    }

    #[test]
    fn fp32_parallel_matches_sequential(seed in any::<u64>()) {
        let csr = random_matrix(150, 500, seed);
        let d = DaspMatrix::from_csr(&csr);
        let x: Vec<f32> = (0..500).map(|i| (i % 7) as f32 * 0.25 - 0.5).collect();
        let seq = d.spmv(&x, &mut NoProbe);
        let par = d.spmv_par(&x);
        prop_assert_eq!(seq, par);
    }
}

#[test]
fn fp32_measured_through_the_cost_model() {
    use dasp_perf::{a100, measure, MethodKind};
    let csr64 = dasp_matgen::banded(5000, 40, 28, 9);
    let csr32: Csr<f32> = csr64.cast();
    let dev = a100();
    let x32: Vec<f32> = dasp_matgen::dense_vector(csr32.cols, 5)
        .iter()
        .map(|&v| v as f32)
        .collect();
    let x64 = dasp_matgen::dense_vector(csr64.cols, 5);
    let m32 = measure(MethodKind::Dasp, &csr32, &x32, &dev);
    let m64 = measure(MethodKind::Dasp, &csr64, &x64, &dev);
    // Half the bytes and a faster MMA unit: fp32 must be faster than fp64.
    assert!(
        m32.estimate.seconds < m64.estimate.seconds,
        "fp32 {} vs fp64 {}",
        m32.estimate.seconds,
        m64.estimate.seconds
    );
    // And correct.
    let want = csr32.spmv_reference(&x32);
    for (a, b) in m32.y.iter().zip(&want) {
        assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0));
    }
}

#[test]
fn fp32_round_trips_the_format() {
    let csr = random_matrix(200, 400, 42);
    let d = DaspMatrix::from_csr(&csr);
    // Column-zero explicit values are rare in the generator; the format
    // must round-trip exactly for this pattern.
    assert_eq!(d.to_csr(), csr);
}

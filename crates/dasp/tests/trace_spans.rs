//! Observability acceptance tests: span coverage, exact delta attribution,
//! and the zero-cost guarantee of the disabled-tracer path.

use dasp_core::DaspMatrix;
use dasp_simt::{CountingProbe, KernelStats, NoProbe};
use dasp_sparse::{Coo, Csr};
use dasp_trace::{chrome_trace_json, validate_json, Tracer, WarpProfiler};

/// A matrix exercising every category kernel: long rows (>256 nnz), medium
/// rows, and short rows of every length 1..=4 (plus empties), in counts
/// that leave work for all four short sub-kernels.
fn all_category_matrix() -> Csr<f64> {
    let mut coo = Coo::<f64>::new(220, 700);
    let mut push_row = |r: usize, len: usize| {
        for k in 0..len {
            // Stride 3 is coprime with 700, so columns stay distinct for
            // any row length up to 700 (duplicates would merge and shrink
            // the long rows below the 256-nnz threshold).
            coo.push(
                r,
                (r * 17 + k * 3) % 700,
                0.01 * (r + 1) as f64 + 0.001 * k as f64,
            );
        }
    };
    // Long: two rows well past the 256 threshold.
    push_row(0, 300);
    push_row(1, 420);
    // Medium: a spread of lengths in 5..=256.
    for r in 2..40 {
        push_row(r, 5 + (r * 13) % 200);
    }
    // Short: lengths 0..=4 repeated, with an excess of singletons so the
    // short1 leftover kernel has rows after short13 pairing.
    for r in 40..200 {
        push_row(r, r % 5);
    }
    for r in 200..220 {
        push_row(r, 1);
    }
    coo.to_csr()
}

fn x_for(csr: &Csr<f64>) -> Vec<f64> {
    (0..csr.cols)
        .map(|i| ((i % 23) as f64 - 11.0) * 0.17)
        .collect()
}

const KERNEL_SPANS: [&str; 6] = [
    "spmv.kernel.long",
    "spmv.kernel.medium",
    "spmv.kernel.short13",
    "spmv.kernel.short4",
    "spmv.kernel.short22",
    "spmv.kernel.short1",
];

const PREPROCESS_SPANS: [&str; 5] = [
    "preprocess.categorize",
    "preprocess.sort",
    "preprocess.build.long",
    "preprocess.build.medium",
    "preprocess.build.short",
];

/// The headline acceptance check: the traced run covers all six kernel
/// launches and the preprocessing phases, the span tree is balanced, and
/// the per-span counter deltas sum *exactly* to the flat run totals.
#[test]
fn trace_covers_kernels_and_phases_with_exact_deltas() {
    let csr = all_category_matrix();
    let x = x_for(&csr);

    // Traced run.
    let tracer = Tracer::new();
    let d = DaspMatrix::from_csr_traced(&csr, &tracer);
    let mut probe = CountingProbe::a100();
    let y_traced = d.spmv_traced(&x, &mut probe, &tracer);
    let traced_stats = probe.stats();
    let trace = tracer.take_trace();

    // Flat (untraced) run for the ground-truth totals.
    let d_flat = DaspMatrix::from_csr(&csr);
    let mut flat_probe = CountingProbe::a100();
    let y_flat = d_flat.spmv(&x, &mut flat_probe);
    let flat_stats = flat_probe.stats();

    assert_eq!(y_traced, y_flat, "tracing must not change the result");
    assert_eq!(traced_stats, flat_stats, "tracing must not change counters");

    trace.check_balanced().expect("span tree is balanced");

    // All six kernel spans and all preprocessing phases are present, each
    // exactly once, parented correctly.
    let spmv_root = trace.find("spmv").expect("spmv root span");
    assert!(spmv_root.parent.is_none());
    for name in KERNEL_SPANS {
        let spans = trace.find_all(name);
        assert_eq!(spans.len(), 1, "{name} recorded once");
        assert_eq!(spans[0].parent, Some(spmv_root.id), "{name} under spmv");
        assert!(spans[0].stats.is_some(), "{name} carries a delta");
    }
    let pre_root = trace.find("preprocess").expect("preprocess root span");
    for name in PREPROCESS_SPANS {
        let spans = trace.find_all(name);
        assert_eq!(spans.len(), 1, "{name} recorded once");
        assert_eq!(
            spans[0].parent,
            Some(pre_root.id),
            "{name} under preprocess"
        );
    }

    // Exact attribution: the six kernel deltas sum to the root span's
    // delta, which in turn equals the whole counted run.
    let child_sum = trace.stats_sum("spmv.kernel.");
    let root_stats = spmv_root.stats.expect("root carries the run total");
    assert_eq!(child_sum, root_stats, "child deltas sum to the root delta");
    assert_eq!(root_stats, flat_stats, "root delta equals the flat run");

    // The export is real Chrome Trace Event Format JSON.
    let json = chrome_trace_json(&trace);
    validate_json(&json).expect("chrome trace is valid JSON");
    assert!(json.contains("\"traceEvents\""));
    for name in KERNEL_SPANS.iter().chain(PREPROCESS_SPANS.iter()) {
        assert!(json.contains(name), "{name} present in the export");
    }
}

/// The zero-cost guarantee: running through the traced entry points with a
/// disabled tracer counts exactly the same instructions and bytes as the
/// plain path, emits no spans, and produces bit-identical `y`.
#[test]
fn disabled_tracer_adds_zero_counted_instructions() {
    let csr = all_category_matrix();
    let x = x_for(&csr);
    let disabled = Tracer::disabled();

    let mut plain_probe = CountingProbe::a100();
    let y_plain = DaspMatrix::from_csr(&csr).spmv(&x, &mut plain_probe);

    let d = DaspMatrix::from_csr_traced(&csr, &disabled);
    let mut probe = CountingProbe::a100();
    let y = d.spmv_traced(&x, &mut probe, &disabled);

    assert_eq!(y, y_plain);
    assert_eq!(probe.stats(), plain_probe.stats());
    assert!(
        disabled.take_trace().is_empty(),
        "disabled tracer records nothing"
    );
}

/// Full instrumentation (counting probe + warp profiler + enabled tracer)
/// must still produce the NoProbe result bit for bit.
#[test]
fn fully_instrumented_run_is_bit_identical_to_noprobe() {
    let csr = all_category_matrix();
    let x = x_for(&csr);
    let d = DaspMatrix::from_csr(&csr);
    let y_bare = d.spmv(&x, &mut NoProbe);

    let tracer = Tracer::new();
    let mut profiler = WarpProfiler::new(CountingProbe::a100());
    let y_inst = d.spmv_traced(&x, &mut profiler, &tracer);

    assert_eq!(y_inst, y_bare);
    let (_, profile) = profiler.into_parts();
    assert!(!profile.is_empty(), "kernels reported warp boundaries");
    // Every category contributes warps; the imbalance metric is defined.
    assert!(profile.nnz_imbalance() >= 1.0);
}

mod properties {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_mixed(rows: usize, cols: usize, seed: u64) -> Csr<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coo = Coo::new(rows, cols);
        for r in 0..rows {
            let len = match rng.gen_range(0..10) {
                0 => 0,
                1..=5 => rng.gen_range(1..=4usize),
                6..=8 => rng.gen_range(5..=120),
                _ => rng.gen_range(257..=400),
            }
            .min(cols);
            let mut cs: Vec<usize> = Vec::new();
            while cs.len() < len {
                let c = rng.gen_range(0..cols);
                if !cs.contains(&c) {
                    cs.push(c);
                }
            }
            for c in cs {
                coo.push(r, c, rng.gen_range(-1.0..1.0));
            }
        }
        coo.to_csr()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Property: full instrumentation never changes `y` or the
        /// counters, and always leaves a balanced span tree whose kernel
        /// deltas sum to the run total.
        #[test]
        fn instrumented_dasp_is_bit_identical(
            rows in 1usize..140,
            cols in 1usize..450,
            seed in any::<u64>(),
        ) {
            let csr = random_mixed(rows, cols, seed);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xD5);
            let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();

            let d = DaspMatrix::from_csr(&csr);
            let bare = d.spmv(&x, &mut NoProbe);

            let tracer = Tracer::new();
            let mut profiler = WarpProfiler::new(CountingProbe::a100());
            let inst = d.spmv_traced(&x, &mut profiler, &tracer);
            prop_assert_eq!(&inst, &bare);

            let trace = tracer.take_trace();
            prop_assert!(trace.check_balanced().is_ok());
            let root = trace.find("spmv").expect("root span");
            let (probe, _) = profiler.into_parts();
            if csr.nnz() == 0 {
                // Early return: no kernels, no delta on the root.
                prop_assert_eq!(trace.stats_sum("spmv.kernel."), KernelStats::default());
            } else {
                prop_assert_eq!(trace.stats_sum("spmv.kernel."), root.stats.unwrap());
                prop_assert_eq!(root.stats.unwrap(), probe.stats());
            }
        }
    }
}

/// An empty matrix still traces cleanly (root span only, zero deltas).
#[test]
fn empty_matrix_traces_cleanly() {
    let csr = Csr::<f64>::empty(8, 8);
    let tracer = Tracer::new();
    let d = DaspMatrix::from_csr_traced(&csr, &tracer);
    let mut probe = CountingProbe::a100();
    let y = d.spmv_traced(&[0.0; 8], &mut probe, &tracer);
    assert_eq!(y, vec![0.0; 8]);
    let trace = tracer.take_trace();
    trace.check_balanced().expect("balanced");
    assert!(trace.find("spmv").is_some());
    assert_eq!(trace.stats_sum("spmv.kernel."), KernelStats::default());
}

//! Corrupt-blob robustness: no truncation or single-byte flip of a
//! serialized `DASPFMT2` blob (with its `DASPPLN1` plan trailer) may
//! panic the reader. Every outcome is either a typed [`SerError`] or an
//! `Ok` matrix that still passes full validation — a flip that lands in
//! a value byte legitimately decodes, but it must never smuggle in a
//! structurally broken matrix.

use dasp_core::consts::DaspParams;
use dasp_core::format::{DaspMatrix, SerError};
use dasp_core::DaspPlan;
use dasp_sparse::Coo;

/// A small matrix exercising all three categories plus the plan trailer.
fn blob() -> Vec<u8> {
    let mut coo = Coo::new(24, 80);
    // One long row (> max_len 8), a few medium rows, and short rows of
    // every piecing length.
    let lens = [70usize, 6, 6, 5, 1, 3, 1, 3, 4, 4, 2, 2, 2, 2, 1, 0];
    for (r, &len) in lens.iter().enumerate() {
        for c in 0..len {
            coo.push(r, c, (r * 7 + c) as f64 * 0.25 - 3.0);
        }
    }
    let csr = coo.to_csr();
    let params = DaspParams {
        max_len: 8,
        ..DaspParams::default()
    };
    let m = DaspPlan::analyze(&csr, params).fill(&csr);
    let mut buf = Vec::new();
    m.write_to(&mut buf).unwrap();
    buf
}

/// Decode must not panic; an `Ok` result must still be fully valid.
fn decode_is_sound(bytes: &[u8]) -> Result<(), String> {
    match DaspMatrix::<f64>::read_from(&mut &bytes[..]) {
        Ok(m) => m
            .validate()
            .map_err(|e| format!("decoded Ok but invalid: {e}")),
        Err(SerError::Io(_) | SerError::Malformed(_)) => Ok(()),
        Err(SerError::WrongScalar { .. } | SerError::Invalid(_)) => Ok(()),
    }
}

#[test]
fn pristine_blob_round_trips() {
    let bytes = blob();
    assert!(decode_is_sound(&bytes).is_ok());
    let m = DaspMatrix::<f64>::read_from(&mut &bytes[..]).unwrap();
    assert!(m.plan().is_some(), "plan trailer must ride along");
}

#[test]
fn every_truncation_yields_typed_error() {
    let bytes = blob();
    for cut in 0..bytes.len() {
        decode_is_sound(&bytes[..cut])
            .unwrap_or_else(|e| panic!("truncation at {cut}/{}: {e}", bytes.len()));
        // A strict prefix can never decode to a full matrix + plan: the
        // reader must notice the missing tail, not silently succeed.
        assert!(
            DaspMatrix::<f64>::read_from(&mut &bytes[..cut]).is_err(),
            "truncation at {cut}/{} decoded Ok",
            bytes.len()
        );
    }
}

#[test]
fn every_single_byte_flip_is_sound() {
    let bytes = blob();
    let mut flipped = bytes.clone();
    for i in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            flipped[i] ^= bit;
            decode_is_sound(&flipped)
                .unwrap_or_else(|e| panic!("flip of bit {bit:#04x} at byte {i}: {e}"));
            flipped[i] = bytes[i];
        }
    }
}

#[test]
fn garbage_and_empty_inputs_are_rejected() {
    assert!(DaspMatrix::<f64>::read_from(&mut &[][..]).is_err());
    let garbage: Vec<u8> = (0..256u32).map(|i| (i * 37 % 251) as u8).collect();
    assert!(DaspMatrix::<f64>::read_from(&mut garbage.as_slice()).is_err());
    // A huge claimed length must be rejected without a matching
    // allocation attempt (the reader clamps preallocation).
    let mut huge = blob();
    let n = huge.len();
    huge[n - 9..n - 1].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(decode_is_sound(&huge).is_ok());
}

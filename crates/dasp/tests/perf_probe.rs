//! Ignored-by-default wall-clock probe of the analysis/execute split —
//! the evidence behind the Fig. 13 break-even claim. Run with
//!
//! ```text
//! cargo test --release -p dasp-core --test perf_probe -- --ignored --nocapture
//! ```

use std::time::Instant;

use dasp_core::{DaspMatrix, DaspParams, DaspPlan};
use dasp_simt::Executor;
use dasp_sparse::{Coo, Csr};
use dasp_trace::Tracer;

/// A band-structured matrix: `n` rows, `k` distinct nonzeros per row.
fn banded(n: usize, k: usize) -> Csr<f64> {
    let mut coo = Coo::new(n, n);
    for r in 0..n {
        for j in 0..k {
            coo.push(r, (r + j) % n, 1.0 + j as f64);
        }
    }
    coo.to_csr()
}

fn ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64() * 1e3)
}

#[test]
#[ignore = "wall-clock probe; run with --ignored --nocapture"]
fn analysis_execute_split_timings() {
    let csr = banded(40_000, 40);
    println!("nnz {}", csr.nnz());
    let params = DaspParams::default();
    let seq = Executor::seq();
    let par4 = Executor::par_with_threads(Some(4));
    for round in 0..3 {
        let phases_of = |tracer: &Tracer| {
            let trace = tracer.take_trace();
            let mut phases = String::new();
            for s in trace.roots() {
                for c in trace.children(s.id) {
                    phases.push_str(&format!("{}={}us ", c.name, c.dur_us));
                }
            }
            phases
        };
        let tracer = Tracer::new();
        let (_full, full_ms) = ms(|| DaspMatrix::from_csr(&csr));
        let (plan, an_seq) = ms(|| DaspPlan::analyze_traced_with(&csr, params, &tracer, &seq));
        let seq_phases = phases_of(&tracer);
        let tracer = Tracer::new();
        let (_p, an_par) = ms(|| DaspPlan::analyze_traced_with(&csr, params, &tracer, &par4));
        let par_phases = phases_of(&tracer);
        let (mut m, fill) = ms(|| plan.fill(&csr));
        let (_u, upd) = ms(|| m.update_values(&csr.vals).unwrap());
        println!(
            "round {round}: from_csr {full_ms:.2}ms analyze(seq) {an_seq:.2}ms \
             analyze(par4) {an_par:.2}ms fill {fill:.2}ms update {upd:.2}ms"
        );
        println!("  seq phases: {seq_phases}");
        println!("  par phases: {par_phases}");
    }
}

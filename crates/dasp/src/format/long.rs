//! Storage of the long-rows category (paper §3.2, yellow part of Fig. 5).

use dasp_fp16::Scalar;
use dasp_simt::{Executor, SharedSlice};
use dasp_sparse::Csr;

use crate::consts::GROUP_ELEMS;
use crate::format::build::run_chunks;

/// Long rows (`len > MAX_LEN`), each cut into zero-padded groups of
/// [`GROUP_ELEMS`] (= 64) elements.
///
/// * `vals` / `cids` — the paper's `longVal` / `longCid`: the elements of
///   all groups back to back, `GROUP_ELEMS` per group, padding carries
///   value 0 and column id 0.
/// * `group_ptr` — the paper's `groupPtr`: group index of each row's first
///   group; length `rows.len() + 1`.
/// * `rows` — original row id of each long row (implicit in the paper's
///   artifact; needed to scatter `y`).
#[derive(Debug, Clone, PartialEq)]
pub struct LongPart<S: Scalar> {
    /// Padded element values (`nnz_long_new` entries).
    pub vals: Vec<S>,
    /// Padded element column ids.
    pub cids: Vec<u32>,
    /// First group of each row; `group_ptr[i+1] - group_ptr[i]` is row `i`'s
    /// group count.
    pub group_ptr: Vec<usize>,
    /// Original row ids.
    pub rows: Vec<u32>,
    /// Original (unpadded) nonzero count of this category.
    pub nnz_orig: usize,
}

/// Rows per chunk when the emit phase runs on the parallel executor; each
/// long row carries at least `MAX_LEN + 1` elements, so chunks stay heavy.
const MIN_CHUNK_ROWS: usize = 4;

impl<S: Scalar> LongPart<S> {
    /// An empty part.
    pub fn empty() -> Self {
        LongPart {
            vals: Vec::new(),
            cids: Vec::new(),
            group_ptr: vec![0],
            rows: Vec::new(),
            nnz_orig: 0,
        }
    }

    /// Total number of 64-element groups.
    pub fn num_groups(&self) -> usize {
        *self.group_ptr.last().expect("group_ptr never empty")
    }

    /// Builds the part from the long rows' ids: a sequential counting pass
    /// over the row lengths fixes every row's group range, then row chunks
    /// fan out over `exec` and copy column ids and values straight from the
    /// CSR arrays into their precomputed (disjoint) destinations. No
    /// per-row staging buffers; output is bit-identical for any executor.
    pub(crate) fn build_csr(csr: &Csr<S>, ids: &[u32], exec: &Executor) -> Self {
        let mut group_ptr = Vec::with_capacity(ids.len() + 1);
        group_ptr.push(0usize);
        let mut nnz_orig = 0usize;
        for &id in ids {
            let len = csr.row_len(id as usize);
            debug_assert!(len > 0, "long rows are never empty");
            nnz_orig += len;
            let prev = *group_ptr.last().unwrap();
            group_ptr.push(prev + len.div_ceil(GROUP_ELEMS));
        }
        let total = *group_ptr.last().unwrap() * GROUP_ELEMS;
        let mut vals = vec![S::zero(); total];
        let mut cids = vec![0u32; total];
        {
            let sv = SharedSlice::new(&mut vals);
            let sc = SharedSlice::new(&mut cids);
            run_chunks(exec, ids.len(), MIN_CHUNK_ROWS, |lo, hi| {
                for (i, &id) in ids[lo..hi].iter().enumerate().map(|(k, id)| (lo + k, id)) {
                    let id = id as usize;
                    let start = csr.row_ptr[id];
                    let base = group_ptr[i] * GROUP_ELEMS;
                    for k in 0..csr.row_ptr[id + 1] - start {
                        sc.write(base + k, csr.col_idx[start + k]);
                        sv.write(base + k, csr.vals[start + k]);
                    }
                }
            });
        }
        LongPart {
            vals,
            cids,
            group_ptr,
            rows: ids.to_vec(),
            nnz_orig,
        }
    }

    /// Appends one long row given its staged elements. Superseded by
    /// [`LongPart::build_csr`] on the build path; kept as the append-based
    /// reference for parity tests (and as a convenient fixture builder).
    #[cfg(test)]
    pub(crate) fn push_row(&mut self, row: u32, elems: &[(u32, S)]) {
        debug_assert!(!elems.is_empty());
        self.rows.push(row);
        self.nnz_orig += elems.len();
        let groups = elems.len().div_ceil(GROUP_ELEMS);
        for (c, v) in elems {
            self.cids.push(*c);
            self.vals.push(*v);
        }
        let pad = groups * GROUP_ELEMS - elems.len();
        self.cids.extend(std::iter::repeat_n(0, pad));
        self.vals.extend(std::iter::repeat_n(S::zero(), pad));
        let start = *self.group_ptr.last().unwrap();
        self.group_ptr.push(start + groups);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_sparse::Coo;

    /// A matrix whose row `id` holds `len` elements `(c, c as f64)`.
    fn csr_with(rows: usize, cols: usize, lens: &[(u32, usize)]) -> Csr<f64> {
        let mut coo = Coo::new(rows, cols);
        for &(id, len) in lens {
            for c in 0..len {
                coo.push(id as usize, c, c as f64);
            }
        }
        coo.to_csr()
    }

    fn seq() -> Executor {
        Executor::seq()
    }

    #[test]
    fn pads_to_group_multiples() {
        let csr = csr_with(6, 300, &[(5, 300)]);
        let p = LongPart::build_csr(&csr, &[5], &seq());
        // 300 elements -> 5 groups of 64 = 320 stored.
        assert_eq!(p.num_groups(), 5);
        assert_eq!(p.vals.len(), 320);
        assert_eq!(p.nnz_orig, 300);
        assert_eq!(p.vals[299], 299.0);
        assert_eq!(p.vals[300], 0.0);
        assert_eq!(p.cids[300], 0);
        assert_eq!(p.group_ptr, vec![0, 5]);
        assert_eq!(p.rows, vec![5]);
    }

    #[test]
    fn exact_multiple_needs_no_padding() {
        let csr = csr_with(1, 320, &[(0, 320)]);
        let p = LongPart::build_csr(&csr, &[0], &seq());
        assert_eq!(p.vals.len(), 320);
        assert_eq!(p.num_groups(), 5);
    }

    #[test]
    fn multiple_rows_accumulate_groups() {
        let csr = csr_with(10, 300, &[(1, 257), (9, 64)]);
        let p = LongPart::build_csr(&csr, &[1, 9], &seq());
        assert_eq!(p.group_ptr, vec![0, 5, 6]);
        assert_eq!(p.rows, vec![1, 9]);
        assert_eq!(p.vals.len(), 6 * 64);
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        let lens: Vec<(u32, usize)> = (0..40)
            .map(|i| (i, 257 + (i as usize * 37) % 300))
            .collect();
        let csr = csr_with(40, 600, &lens);
        let ids: Vec<u32> = (0..40).collect();
        let s = LongPart::build_csr(&csr, &ids, &Executor::seq());
        let p = LongPart::build_csr(&csr, &ids, &Executor::par_with_threads(Some(4)));
        assert_eq!(s, p);
    }

    #[test]
    fn matches_append_based_reference() {
        let lens: Vec<(u32, usize)> = vec![(2, 300), (3, 257), (7, 411)];
        let csr = csr_with(8, 500, &lens);
        let new = LongPart::build_csr(&csr, &[2, 3, 7], &seq());
        let mut reference = LongPart::<f64>::empty();
        for &(id, _) in &lens {
            let elems: Vec<(u32, f64)> = csr.row(id as usize).collect();
            reference.push_row(id, &elems);
        }
        assert_eq!(new, reference);
    }
}

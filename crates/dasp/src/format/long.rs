//! Storage of the long-rows category (paper §3.2, yellow part of Fig. 5).

use dasp_fp16::Scalar;

use crate::consts::GROUP_ELEMS;

/// Long rows (`len > MAX_LEN`), each cut into zero-padded groups of
/// [`GROUP_ELEMS`] (= 64) elements.
///
/// * `vals` / `cids` — the paper's `longVal` / `longCid`: the elements of
///   all groups back to back, `GROUP_ELEMS` per group, padding carries
///   value 0 and column id 0.
/// * `group_ptr` — the paper's `groupPtr`: group index of each row's first
///   group; length `rows.len() + 1`.
/// * `rows` — original row id of each long row (implicit in the paper's
///   artifact; needed to scatter `y`).
#[derive(Debug, Clone, PartialEq)]
pub struct LongPart<S: Scalar> {
    /// Padded element values (`nnz_long_new` entries).
    pub vals: Vec<S>,
    /// Padded element column ids.
    pub cids: Vec<u32>,
    /// First group of each row; `group_ptr[i+1] - group_ptr[i]` is row `i`'s
    /// group count.
    pub group_ptr: Vec<usize>,
    /// Original row ids.
    pub rows: Vec<u32>,
    /// Original (unpadded) nonzero count of this category.
    pub nnz_orig: usize,
}

impl<S: Scalar> LongPart<S> {
    /// An empty part.
    pub fn empty() -> Self {
        LongPart {
            vals: Vec::new(),
            cids: Vec::new(),
            group_ptr: vec![0],
            rows: Vec::new(),
            nnz_orig: 0,
        }
    }

    /// Total number of 64-element groups.
    pub fn num_groups(&self) -> usize {
        *self.group_ptr.last().expect("group_ptr never empty")
    }

    /// Appends one long row given its elements.
    pub(crate) fn push_row(&mut self, row: u32, elems: &[(u32, S)]) {
        debug_assert!(!elems.is_empty());
        self.rows.push(row);
        self.nnz_orig += elems.len();
        let groups = elems.len().div_ceil(GROUP_ELEMS);
        for (c, v) in elems {
            self.cids.push(*c);
            self.vals.push(*v);
        }
        let pad = groups * GROUP_ELEMS - elems.len();
        self.cids.extend(std::iter::repeat_n(0, pad));
        self.vals.extend(std::iter::repeat_n(S::zero(), pad));
        let start = *self.group_ptr.last().unwrap();
        self.group_ptr.push(start + groups);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pads_to_group_multiples() {
        let mut p = LongPart::<f64>::empty();
        let elems: Vec<(u32, f64)> = (0..300).map(|i| (i, i as f64)).collect();
        p.push_row(5, &elems);
        // 300 elements -> 5 groups of 64 = 320 stored.
        assert_eq!(p.num_groups(), 5);
        assert_eq!(p.vals.len(), 320);
        assert_eq!(p.nnz_orig, 300);
        assert_eq!(p.vals[299], 299.0);
        assert_eq!(p.vals[300], 0.0);
        assert_eq!(p.cids[300], 0);
        assert_eq!(p.group_ptr, vec![0, 5]);
        assert_eq!(p.rows, vec![5]);
    }

    #[test]
    fn exact_multiple_needs_no_padding() {
        let mut p = LongPart::<f64>::empty();
        let elems: Vec<(u32, f64)> = (0..320).map(|i| (i, 1.0)).collect();
        p.push_row(0, &elems);
        assert_eq!(p.vals.len(), 320);
        assert_eq!(p.num_groups(), 5);
    }

    #[test]
    fn multiple_rows_accumulate_groups() {
        let mut p = LongPart::<f64>::empty();
        p.push_row(1, &(0..257).map(|i| (i, 1.0)).collect::<Vec<_>>());
        p.push_row(9, &(0..64).map(|i| (i, 1.0)).collect::<Vec<_>>());
        assert_eq!(p.group_ptr, vec![0, 5, 6]);
        assert_eq!(p.rows, vec![1, 9]);
        assert_eq!(p.vals.len(), 6 * 64);
    }
}

//! The DASP data structure (paper §3.2).
//!
//! [`DaspMatrix::from_csr`] performs the preprocessing the paper's Fig. 13
//! measures: classify rows by length, then lay each category out in
//! MMA-shaped blocks:
//!
//! * [`LongPart`] — rows longer than `MAX_LEN`, cut into 64-element groups;
//! * [`MediumPart`] — rows of length 5..=`MAX_LEN`, sorted descending,
//!   grouped 8 to a row-block and split into regular blocks / irregular
//!   remainder by the 75% fill threshold;
//! * [`ShortPart`] — rows of length <= 4, pieced into full 8x4 blocks.
//!
//! Empty rows belong to no category; their `y` entries stay zero.

mod build;
mod long;
mod medium;
mod plan;
mod reconstruct;
mod reorder;
mod serialize;
mod short;
mod validate;

pub use long::LongPart;
pub use medium::MediumPart;
pub use plan::{
    DaspPlan, PlanCache, PlanView, RefreshError, DEFAULT_PLAN_CACHE_CAP, GATHER_PADDING,
};
pub use serialize::SerError;
pub use short::{ShortPart, NO_ROW};
pub use validate::FormatError;

use std::sync::Arc;

use dasp_fp16::Scalar;
use dasp_sparse::Csr;

use crate::consts::DaspParams;

/// A sparse matrix converted to the DASP blocked format.
///
/// Equality compares the format content (dimensions, parameters, and the
/// three category parts); whether a reusable [`DaspPlan`] happens to be
/// attached does not change what the matrix *is*.
#[derive(Debug, Clone)]
pub struct DaspMatrix<S: Scalar> {
    /// Number of rows of the original matrix.
    pub rows: usize,
    /// Number of columns of the original matrix.
    pub cols: usize,
    /// Number of stored nonzeros of the original matrix.
    pub nnz: usize,
    /// The long-rows category.
    pub long: LongPart<S>,
    /// The medium-rows category.
    pub medium: MediumPart<S>,
    /// The short-rows category.
    pub short: ShortPart<S>,
    /// Parameters the matrix was built with.
    pub params: DaspParams,
    /// The analysis plan the matrix was filled from, when it was built via
    /// [`DaspPlan::fill`] (or had one attached); powers
    /// [`DaspMatrix::update_values`].
    pub(crate) plan: Option<Arc<DaspPlan>>,
}

impl<S: Scalar> PartialEq for DaspMatrix<S> {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.nnz == other.nnz
            && self.long == other.long
            && self.medium == other.medium
            && self.short == other.short
            && self.params == other.params
    }
}

impl<S: Scalar> DaspMatrix<S> {
    /// Converts a CSR matrix with the paper's default parameters
    /// (`MAX_LEN = 256`, `threshold = 0.75`).
    pub fn from_csr(csr: &Csr<S>) -> Self {
        Self::with_params(csr, DaspParams::default())
    }

    /// Converts a CSR matrix with explicit parameters.
    pub fn with_params(csr: &Csr<S>, params: DaspParams) -> Self {
        build::build(csr, params)
    }

    /// [`DaspMatrix::from_csr`] with each preprocessing phase recorded as
    /// a span (`preprocess.categorize`, `preprocess.sort`,
    /// `preprocess.build.{long,medium,short}`) under a `preprocess` root.
    /// A disabled tracer makes this identical to `from_csr`.
    pub fn from_csr_traced(csr: &Csr<S>, tracer: &dasp_trace::Tracer) -> Self {
        build::build_traced(csr, DaspParams::default(), tracer)
    }

    /// [`DaspMatrix::with_params`] with preprocessing spans.
    pub fn with_params_traced(
        csr: &Csr<S>,
        params: DaspParams,
        tracer: &dasp_trace::Tracer,
    ) -> Self {
        build::build_traced(csr, params, tracer)
    }

    /// Category occupancy statistics (the data behind paper Fig. 12).
    pub fn category_stats(&self) -> CategoryStats {
        let rows_long = self.long.rows.len();
        let rows_medium = self.medium.rows.len();
        let rows_short = self.short.num_rows();
        CategoryStats {
            rows: self.rows,
            nnz: self.nnz,
            rows_long,
            rows_medium,
            rows_short,
            rows_empty: self.rows - rows_long - rows_medium - rows_short,
            nnz_long: self.long.nnz_orig,
            nnz_medium: self.medium.nnz_orig,
            nnz_short: self.short.nnz_orig,
            stored_long: self.long.vals.len(),
            stored_medium: self.medium.reg_val.len() + self.medium.irreg_val.len(),
            stored_short: self.short.vals.len(),
        }
    }
}

/// Row and nonzero occupancy per category, plus padded storage sizes.
///
/// `stored_*` counts include the zero fill, so
/// `stored / nnz - 1` is the category's fill rate (the paper quotes 0.85%
/// for `rel19`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategoryStats {
    /// Total rows.
    pub rows: usize,
    /// Total nonzeros.
    pub nnz: usize,
    /// Rows in the long category.
    pub rows_long: usize,
    /// Rows in the medium category.
    pub rows_medium: usize,
    /// Rows in the short category (length 1..=4).
    pub rows_short: usize,
    /// Rows with no nonzeros.
    pub rows_empty: usize,
    /// Original nonzeros in long rows.
    pub nnz_long: usize,
    /// Original nonzeros in medium rows.
    pub nnz_medium: usize,
    /// Original nonzeros in short rows.
    pub nnz_short: usize,
    /// Stored elements (incl. padding) in the long part.
    pub stored_long: usize,
    /// Stored elements (incl. padding) in the medium part.
    pub stored_medium: usize,
    /// Stored elements (incl. padding) in the short part.
    pub stored_short: usize,
}

impl CategoryStats {
    /// Overall zero-fill rate: padded elements / original nonzeros.
    pub fn fill_rate(&self) -> f64 {
        let stored = self.stored_long + self.stored_medium + self.stored_short;
        if self.nnz == 0 {
            return 0.0;
        }
        stored as f64 / self.nnz as f64 - 1.0
    }
}

impl<S: Scalar> DaspMatrix<S> {
    /// Total bytes of the converted format's arrays (values, column ids,
    /// pointers, permutations) — what the paper's format occupies in GPU
    /// memory, for comparison against CSR's `12*nnz + 4*(rows+1)` (FP64).
    pub fn memory_bytes(&self) -> usize {
        let s = std::mem::size_of::<S>();
        let long = self.long.vals.len() * s
            + self.long.cids.len() * 4
            + self.long.group_ptr.len() * 4
            + self.long.rows.len() * 4;
        let medium = self.medium.reg_val.len() * s
            + self.medium.reg_cid.len() * 4
            + self.medium.rowblock_ptr.len() * 4
            + self.medium.irreg_val.len() * s
            + self.medium.irreg_cid.len() * 4
            + self.medium.irreg_ptr.len() * 4
            + self.medium.rows.len() * 4;
        let short = self.short.vals.len() * s
            + self.short.cids.len() * 4
            + (self.short.perm13.len()
                + self.short.perm4.len()
                + self.short.perm22.len()
                + self.short.perm1.len())
                * 4;
        long + medium + short
    }
}

#[cfg(test)]
mod footprint_tests {
    use super::*;
    use dasp_sparse::Coo;

    #[test]
    fn footprint_is_close_to_csr_for_friendly_structure() {
        // 4-nonzero rows, no padding: format memory ~= CSR memory + perms.
        let mut coo = Coo::<f64>::new(512, 512);
        for r in 0..512 {
            for k in 0..4 {
                coo.push(r, (r + k * 31) % 512, 1.0);
            }
        }
        let csr = coo.to_csr();
        let d = DaspMatrix::from_csr(&csr);
        let csr_bytes = csr.nnz() * 12 + (csr.rows + 1) * 4;
        let dasp_bytes = d.memory_bytes();
        assert!(
            dasp_bytes < csr_bytes * 2,
            "dasp {dasp_bytes} vs csr {csr_bytes}"
        );
        assert!(dasp_bytes >= csr.nnz() * 12, "must hold at least the data");
    }
}

//! Structural validation of the DASP format.
//!
//! [`DaspMatrix::validate`] checks every internal invariant the kernels
//! rely on. The builder always produces valid formats (property-tested),
//! but a validator makes that contract explicit, catches corruption in
//! hand-constructed or deserialized formats, and documents the format's
//! rules in executable form.

use dasp_fp16::Scalar;

use crate::consts::{BLOCK_ELEMS, GROUP_ELEMS, MMA_M};
use crate::format::short::NO_ROW;
use crate::format::DaspMatrix;

/// A violated DASP-format invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError(pub String);

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid DASP format: {}", self.0)
    }
}

impl std::error::Error for FormatError {}

fn err<T>(msg: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError(msg.into()))
}

impl<S: Scalar> DaspMatrix<S> {
    /// Checks all structural invariants of the blocked format.
    pub fn validate(&self) -> Result<(), FormatError> {
        self.validate_long()?;
        self.validate_medium()?;
        self.validate_short()?;
        self.validate_row_partition()?;
        // The top-level nonzero count gates the kernels' early-return: it
        // must agree with the per-category counts, or a corrupted header
        // would silently produce an all-zero result.
        let nnz_sum = self.long.nnz_orig + self.medium.nnz_orig + self.short.nnz_orig;
        if self.nnz != nnz_sum {
            return err(format!(
                "nnz {} disagrees with category sum {nnz_sum}",
                self.nnz
            ));
        }
        if self.long.nnz_orig > self.long.vals.len()
            || self.medium.nnz_orig > self.medium.reg_val.len() + self.medium.irreg_val.len()
            || self.short.nnz_orig > self.short.vals.len()
        {
            return err("a category's nnz_orig exceeds its stored elements");
        }
        Ok(())
    }

    fn validate_long(&self) -> Result<(), FormatError> {
        let l = &self.long;
        if l.group_ptr.len() != l.rows.len() + 1 {
            return err("long: group_ptr length != rows + 1");
        }
        if l.group_ptr[0] != 0 {
            return err("long: group_ptr[0] != 0");
        }
        for w in l.group_ptr.windows(2) {
            if w[0] >= w[1] {
                return err(
                    "long: group_ptr not strictly increasing (every long row has >= 1 group)",
                );
            }
        }
        if l.num_groups()
            .checked_mul(GROUP_ELEMS)
            .is_none_or(|n| n != l.vals.len())
        {
            return err("long: vals not group-aligned");
        }
        if l.cids.len() != l.vals.len() {
            return err("long: cids/vals length mismatch");
        }
        for (i, &c) in l.cids.iter().enumerate() {
            if c as usize >= self.cols {
                return Err(FormatError(format!("long: cid {c} out of range at {i}")));
            }
        }
        for &r in &l.rows {
            if r as usize >= self.rows {
                return err("long: row id out of range");
            }
        }
        Ok(())
    }

    fn validate_medium(&self) -> Result<(), FormatError> {
        let m = &self.medium;
        if m.rowblock_ptr.is_empty() {
            // Deserialized containers can carry an empty array; every use
            // below (and `num_rowblocks`) assumes at least the leading 0.
            return err("medium: rowblock_ptr must hold at least [0]");
        }
        let expect_blocks = m.rows.len().div_ceil(MMA_M);
        if !m.rows.is_empty() && m.num_rowblocks() != expect_blocks {
            return err("medium: rowblock count != ceil(rows / 8)");
        }
        if m.rowblock_ptr[0] != 0 {
            return err("medium: rowblock_ptr[0] != 0");
        }
        for w in m.rowblock_ptr.windows(2) {
            if w[0] > w[1] {
                return err("medium: rowblock_ptr decreasing");
            }
            if (w[1] - w[0]) % BLOCK_ELEMS != 0 {
                return err("medium: regular part not a multiple of 32");
            }
        }
        if *m.rowblock_ptr.last().unwrap_or(&0) != m.reg_val.len() {
            return err("medium: rowblock_ptr end != reg_val length");
        }
        if m.reg_cid.len() != m.reg_val.len() {
            return err("medium: reg_cid/reg_val length mismatch");
        }
        if m.irreg_ptr.len() != m.rows.len() + 1 {
            return err("medium: irreg_ptr length != rows + 1");
        }
        for w in m.irreg_ptr.windows(2) {
            if w[0] > w[1] {
                return err("medium: irreg_ptr decreasing");
            }
        }
        if *m.irreg_ptr.last().unwrap_or(&0) != m.irreg_val.len() {
            return err("medium: irreg_ptr end != irreg_val length");
        }
        if m.irreg_cid.len() != m.irreg_val.len() {
            return err("medium: irreg_cid/irreg_val length mismatch");
        }
        for &c in m.reg_cid.iter().chain(&m.irreg_cid) {
            if c as usize >= self.cols {
                return err("medium: cid out of range");
            }
        }
        for &r in &m.rows {
            if r as usize >= self.rows {
                return err("medium: row id out of range");
            }
        }
        Ok(())
    }

    fn validate_short(&self) -> Result<(), FormatError> {
        let s = &self.short;
        // Checked arithmetic throughout: warp counts come straight from a
        // (possibly corrupt) deserialized header, and this must reject —
        // not overflow — under `-C overflow-checks=on`.
        let elems_13 = s.n13_warps.checked_mul(2 * BLOCK_ELEMS);
        let elems_4 = s.n4_warps.checked_mul(4 * BLOCK_ELEMS);
        let elems_22 = s.n22_warps.checked_mul(2 * BLOCK_ELEMS);
        if Some(s.off4) != elems_13 {
            return err("short: off4 != end of 1&3 region");
        }
        if Some(s.off22) != elems_4.and_then(|e| e.checked_add(s.off4)) {
            return err("short: off22 != end of len-4 region");
        }
        if Some(s.off1) != elems_22.and_then(|e| e.checked_add(s.off22)) {
            return err("short: off1 != end of 2&2 region");
        }
        if Some(s.vals.len()) != s.off1.checked_add(s.n1) {
            return err("short: vals length != regions + singles");
        }
        if s.cids.len() != s.vals.len() {
            return err("short: cids/vals length mismatch");
        }
        if Some(s.perm13.len()) != s.n13_warps.checked_mul(32)
            || Some(s.perm4.len()) != s.n4_warps.checked_mul(32)
            || Some(s.perm22.len()) != s.n22_warps.checked_mul(32)
            || s.perm1.len() != s.n1
        {
            return err("short: perm array sizes inconsistent with warp counts");
        }
        for perm in [&s.perm13, &s.perm4, &s.perm22, &s.perm1] {
            for &r in perm.iter() {
                if r != NO_ROW && r as usize >= self.rows {
                    return err("short: perm row id out of range");
                }
            }
        }
        for &c in &s.cids {
            if c as usize >= self.cols {
                return err("short: cid out of range");
            }
        }
        Ok(())
    }

    /// Every original row appears in exactly one category slot (or none,
    /// for empty rows).
    fn validate_row_partition(&self) -> Result<(), FormatError> {
        // A bitmap rather than `vec![false; rows]`: `rows` is header data
        // and may be anything up to the deserializer's plausibility cap, so
        // keep the transient allocation 8x smaller.
        let mut seen = vec![0u64; self.rows.div_ceil(64)];
        let mut mark = |r: u32| -> Result<(), FormatError> {
            let i = r as usize;
            if seen[i / 64] & (1 << (i % 64)) != 0 {
                return Err(FormatError(format!(
                    "row {i} assigned to two category slots"
                )));
            }
            seen[i / 64] |= 1 << (i % 64);
            Ok(())
        };
        for &r in &self.long.rows {
            mark(r)?;
        }
        for &r in &self.medium.rows {
            mark(r)?;
        }
        for perm in [
            &self.short.perm13,
            &self.short.perm4,
            &self.short.perm22,
            &self.short.perm1,
        ] {
            for &r in perm.iter() {
                if r != NO_ROW {
                    mark(r)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_format(seed: u64) -> DaspMatrix<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coo = dasp_sparse::Coo::new(200, 700);
        for r in 0..200usize {
            let len = match rng.gen_range(0..10) {
                0 => 0,
                1..=5 => rng.gen_range(1..=4usize),
                6..=8 => rng.gen_range(5..=256),
                _ => rng.gen_range(257..=650),
            };
            let mut cs: Vec<usize> = Vec::new();
            while cs.len() < len {
                let c = rng.gen_range(0..700);
                if !cs.contains(&c) {
                    cs.push(c);
                }
            }
            for c in cs {
                coo.push(r, c, rng.gen_range(0.1..1.0));
            }
        }
        DaspMatrix::from_csr(&coo.to_csr())
    }

    #[test]
    fn builder_output_is_always_valid() {
        for seed in 0..12 {
            random_format(seed)
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn corruption_is_detected() {
        // Each mutation must trip a specific invariant.
        let base = random_format(3);

        let mut m = base.clone();
        m.long.group_ptr[0] = 1;
        assert!(m.validate().is_err());

        let mut m = base.clone();
        if !m.long.vals.is_empty() {
            m.long.vals.pop();
            assert!(m.validate().is_err());
        }

        let mut m = base.clone();
        if !m.medium.reg_cid.is_empty() {
            m.medium.reg_cid[0] = 10_000;
            assert!(m.validate().is_err());
        }

        let mut m = base.clone();
        if m.medium.irreg_ptr.len() > 2 {
            let last = m.medium.irreg_ptr.len() - 1;
            m.medium.irreg_ptr.swap(1, last);
            assert!(m.validate().is_err());
        }

        let mut m = base.clone();
        m.short.off4 += 1;
        assert!(m.validate().is_err());

        let mut m = base.clone();
        if let Some(slot) = m.short.perm4.iter().position(|&r| r != NO_ROW) {
            // Duplicate an assigned row into another category.
            let row = m.short.perm4[slot];
            m.medium.rows.push(row);
            m.medium.irreg_ptr.push(*m.medium.irreg_ptr.last().unwrap());
            assert!(m.validate().is_err(), "duplicate row must be caught");
        }
    }

    #[test]
    fn corrupted_nnz_header_is_detected() {
        let mut m = random_format(5);
        m.nnz = 0;
        assert!(m.validate().is_err(), "zeroed nnz must fail validation");
        let mut m = random_format(5);
        m.nnz += 1;
        assert!(m.validate().is_err());
        let mut m = random_format(5);
        m.short.nnz_orig = m.short.vals.len() + 1;
        assert!(m.validate().is_err());
    }

    #[test]
    fn generator_formats_validate() {
        for csr in [
            dasp_matgen::banded(400, 12, 9, 1),
            dasp_matgen::rmat(10, 6, 2),
            dasp_matgen::circuit_like(1000, 3, 400, 3),
            dasp_matgen::stencil3d(8, 8, 8, 27, 4),
        ] {
            DaspMatrix::from_csr(&csr).validate().unwrap();
        }
    }
}

//! Storage of the short-rows category (paper §3.2, cool-toned part of
//! Fig. 5).

use dasp_fp16::Scalar;
use dasp_simt::{Executor, SharedSlice};
use dasp_sparse::Csr;

use crate::consts::{MMA_K, MMA_M};
use crate::format::build::run_chunks;

/// Sentinel in the permutation arrays marking a padding slot with no
/// original row behind it.
pub const NO_ROW: u32 = u32::MAX;

/// Short rows (`len <= 4`), pieced together into full 8x4 blocks.
///
/// Four sub-categories, stored back to back in `vals`/`cids` in the paper's
/// order:
///
/// 1. **1&3 pieced** — a length-1 row and a length-3 row share a packed
///    4-element row (`[a1 | b0 b1 b2]`). Two blocks per warp; 32 `y` values.
/// 2. **pure length-4** — length-4 rows, length-3 rows left over after 1&3
///    pairing (padded with one zero), and an odd leftover length-2 row
///    (padded with two zeros). Four blocks per warp.
/// 3. **2&2 pieced** — two length-2 rows per packed row. Two blocks per
///    warp.
/// 4. **leftover length-1** — computed by the scalar kernel (Algorithm 5).
///
/// Each sub-category is padded with all-zero packed rows up to its warp
/// granularity, and `perm*` arrays map each warp's 32 `y` slots back to
/// original row ids ([`NO_ROW`] for padding). The slot order inside a warp
/// follows the kernels' shuffle extraction: iteration `i` of the 4-MMA loop
/// fills slots `i*8..(i+1)*8`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortPart<S: Scalar> {
    /// All packed element values: `[1&3 blocks][len-4 blocks][2&2 blocks][singles]`.
    pub vals: Vec<S>,
    /// Matching column ids (0 for padding).
    pub cids: Vec<u32>,
    /// Warps in the 1&3 kernel (2 blocks, 32 y values each).
    pub n13_warps: usize,
    /// Warps in the length-4 kernel (4 blocks each).
    pub n4_warps: usize,
    /// Warps in the 2&2 kernel (2 blocks each).
    pub n22_warps: usize,
    /// Leftover singleton rows handled by the scalar kernel.
    pub n1: usize,
    /// Element offset of the length-4 blocks within `vals`.
    pub off4: usize,
    /// Element offset of the 2&2 blocks.
    pub off22: usize,
    /// Element offset of the singleton elements.
    pub off1: usize,
    /// y-slot to original row for the 1&3 kernel; `n13_warps * 32` entries.
    pub perm13: Vec<u32>,
    /// y-slot to original row for the length-4 kernel; `n4_warps * 32`.
    pub perm4: Vec<u32>,
    /// y-slot to original row for the 2&2 kernel; `n22_warps * 32`.
    pub perm22: Vec<u32>,
    /// Original row of each singleton; `n1` entries.
    pub perm1: Vec<u32>,
    /// Original (unpadded) nonzero count of this category.
    pub nnz_orig: usize,
}

/// One short row queued for packing (legacy staged representation).
#[cfg(test)]
type ShortRow<S> = (u32, Vec<(u32, S)>);

/// Packed-row slots per chunk when an emit phase runs on the parallel
/// executor (each slot copies at most 4 elements).
const MIN_CHUNK_SLOTS: usize = 512;

impl<S: Scalar> ShortPart<S> {
    /// An empty part.
    pub fn empty() -> Self {
        ShortPart {
            vals: Vec::new(),
            cids: Vec::new(),
            n13_warps: 0,
            n4_warps: 0,
            n22_warps: 0,
            n1: 0,
            off4: 0,
            off22: 0,
            off1: 0,
            perm13: Vec::new(),
            perm4: Vec::new(),
            perm22: Vec::new(),
            perm1: Vec::new(),
            nnz_orig: 0,
        }
    }

    /// Number of short rows across all sub-categories.
    pub fn num_rows(&self) -> usize {
        self.perm13.iter().filter(|&&r| r != NO_ROW).count()
            + self.perm4.iter().filter(|&&r| r != NO_ROW).count()
            + self.perm22.iter().filter(|&&r| r != NO_ROW).count()
            + self.n1
    }

    /// Builds the part from the short rows' ids (original row order).
    ///
    /// `piecing = false` is the ablation of paper §3.3.3: every row shorter
    /// than 4 is zero-padded into the length-4 category instead of being
    /// pieced, so a length-1 row occupies a whole 4-element slot (4x the
    /// value traffic and x loads).
    ///
    /// A sequential classification pass over the row lengths splits the ids
    /// into the four sub-categories and fixes the packed geometry; the
    /// emit phases then fan real packed-row slots out over `exec` and copy
    /// elements straight from the CSR arrays into their precomputed
    /// (disjoint) destinations, while padding slots keep their prefilled
    /// zeros. No per-row staging; output is bit-identical for any executor.
    pub(crate) fn build_csr(csr: &Csr<S>, ids: &[u32], piecing: bool, exec: &Executor) -> Self {
        // --- classification (row ids only; lengths come from row_ptr) -----
        let mut r1: Vec<u32> = Vec::new();
        let mut r2: Vec<u32> = Vec::new();
        let mut r3: Vec<u32> = Vec::new();
        let mut r4: Vec<u32> = Vec::new();
        let mut nnz_orig = 0usize;
        for &id in ids {
            let len = csr.row_len(id as usize);
            nnz_orig += len;
            if !piecing {
                debug_assert!((1..=MMA_K).contains(&len), "short row of length {len}");
                r4.push(id);
                continue;
            }
            match len {
                1 => r1.push(id),
                2 => r2.push(id),
                3 => r3.push(id),
                4 => r4.push(id),
                l => panic!("short row of length {l}"),
            }
        }

        // --- geometry ------------------------------------------------------
        let pairs13 = r1.len().min(r3.len());
        let (ones, singles) = r1.split_at(pairs13);
        let (threes, leftover3) = r3.split_at(pairs13);
        // A packed row per pair; warp granularity = 16 packed rows.
        let n13_warps = pairs13.div_ceil(2 * MMA_M);
        let packed13 = n13_warps * 2 * MMA_M;

        // Pure length-4 slots: fours, then leftover threes (padded with one
        // zero), then an odd leftover length-2 row (padded with two zeros;
        // the paper leaves this case unspecified, padding keeps it in the
        // MMA path). Each slot copies `row_len` real elements.
        let mut fours: Vec<u32> = r4;
        fours.extend_from_slice(leftover3);
        let mut twos: &[u32] = &r2;
        if twos.len() % 2 == 1 {
            let (rest, odd) = twos.split_at(twos.len() - 1);
            fours.push(odd[0]);
            twos = rest;
        }
        let n4_warps = fours.len().div_ceil(4 * MMA_M);
        let packed4 = n4_warps * 4 * MMA_M;

        let pairs22 = twos.len() / 2;
        let n22_warps = pairs22.div_ceil(2 * MMA_M);
        let packed22 = n22_warps * 2 * MMA_M;

        let n1 = singles.len();
        let off4 = packed13 * MMA_K;
        let off22 = off4 + packed4 * MMA_K;
        let off1 = off22 + packed22 * MMA_K;
        let total = off1 + n1;

        // --- emit ----------------------------------------------------------
        let mut vals = vec![S::zero(); total];
        let mut cids = vec![0u32; total];
        let mut perm13 = vec![NO_ROW; n13_warps * 32];
        let mut perm4 = vec![NO_ROW; n4_warps * 32];
        let mut perm22 = vec![NO_ROW; n22_warps * 32];
        {
            let sv = SharedSlice::new(&mut vals);
            let sc = SharedSlice::new(&mut cids);
            let copy_row = |id: u32, base: usize, take: usize| {
                let start = csr.row_ptr[id as usize];
                for k in 0..take {
                    sc.write(base + k, csr.col_idx[start + k]);
                    sv.write(base + k, csr.vals[start + k]);
                }
            };

            // 1&3 pieced: packed row `slot` = [one | three0 three1 three2],
            // living in block b = slot/8, local row r = slot%8, warp w = b/2,
            // with the "1" piece extracted at iteration i0 = (b%2)*2.
            let sp13 = SharedSlice::new(&mut perm13);
            run_chunks(exec, pairs13, MIN_CHUNK_SLOTS, |lo, hi| {
                for slot in lo..hi {
                    let (b, r) = (slot / MMA_M, slot % MMA_M);
                    let w = b / 2;
                    let i0 = (b % 2) * 2;
                    let base = slot * MMA_K;
                    copy_row(ones[slot], base, 1);
                    copy_row(threes[slot], base + 1, 3);
                    sp13.write(w * 32 + i0 * MMA_M + r, ones[slot]);
                    sp13.write(w * 32 + (i0 + 1) * MMA_M + r, threes[slot]);
                }
            });

            // Pure length-4 (plus padded leftovers).
            let sp4 = SharedSlice::new(&mut perm4);
            run_chunks(exec, fours.len(), MIN_CHUNK_SLOTS, |lo, hi| {
                for (k, &id) in fours[lo..hi].iter().enumerate() {
                    let slot = lo + k;
                    let (b, r) = (slot / MMA_M, slot % MMA_M);
                    let (w, i) = (b / 4, b % 4);
                    copy_row(id, off4 + slot * MMA_K, csr.row_len(id as usize));
                    sp4.write(w * 32 + i * MMA_M + r, id);
                }
            });

            // 2&2 pieced.
            let sp22 = SharedSlice::new(&mut perm22);
            run_chunks(exec, pairs22, MIN_CHUNK_SLOTS, |lo, hi| {
                for slot in lo..hi {
                    let (b, r) = (slot / MMA_M, slot % MMA_M);
                    let w = b / 2;
                    let i0 = (b % 2) * 2;
                    let base = off22 + slot * MMA_K;
                    copy_row(twos[2 * slot], base, 2);
                    copy_row(twos[2 * slot + 1], base + 2, 2);
                    sp22.write(w * 32 + i0 * MMA_M + r, twos[2 * slot]);
                    sp22.write(w * 32 + (i0 + 1) * MMA_M + r, twos[2 * slot + 1]);
                }
            });

            // Leftover singletons.
            run_chunks(exec, n1, MIN_CHUNK_SLOTS, |lo, hi| {
                for (k, &id) in singles[lo..hi].iter().enumerate() {
                    copy_row(id, off1 + lo + k, 1);
                }
            });
        }

        ShortPart {
            vals,
            cids,
            n13_warps,
            n4_warps,
            n22_warps,
            n1,
            off4,
            off22,
            off1,
            perm13,
            perm4,
            perm22,
            perm1: singles.to_vec(),
            nnz_orig,
        }
    }

    /// Builds the part from staged short rows, in original row order.
    /// Superseded by [`ShortPart::build_csr`] on the build path; kept as
    /// the append-based reference for parity tests.
    #[cfg(test)]
    pub(crate) fn build(short_rows: Vec<ShortRow<S>>) -> Self {
        Self::build_with_piecing(short_rows, true)
    }

    /// The non-piecing (`build_csr(.., piecing = false, ..)`) reference.
    #[cfg(test)]
    pub(crate) fn build_padded_only(short_rows: Vec<ShortRow<S>>) -> Self {
        Self::build_with_piecing(short_rows, false)
    }

    #[cfg(test)]
    fn build_with_piecing(short_rows: Vec<ShortRow<S>>, piecing: bool) -> Self {
        let mut part = ShortPart::empty();
        part.nnz_orig = short_rows.iter().map(|(_, e)| e.len()).sum();

        let mut r1: Vec<ShortRow<S>> = Vec::new();
        let mut r2: Vec<ShortRow<S>> = Vec::new();
        let mut r3: Vec<ShortRow<S>> = Vec::new();
        let mut r4: Vec<ShortRow<S>> = Vec::new();
        for row in short_rows {
            match row.1.len() {
                1 if !piecing => {
                    let (id, e) = row;
                    r4.push((
                        id,
                        vec![e[0], (0, S::zero()), (0, S::zero()), (0, S::zero())],
                    ));
                }
                2 if !piecing => {
                    let (id, e) = row;
                    r4.push((id, vec![e[0], e[1], (0, S::zero()), (0, S::zero())]));
                }
                3 if !piecing => {
                    let (id, e) = row;
                    r4.push((id, vec![e[0], e[1], e[2], (0, S::zero())]));
                }
                1 => r1.push(row),
                2 => r2.push(row),
                3 => r3.push(row),
                4 => r4.push(row),
                l => panic!("short row of length {l}"),
            }
        }

        // --- 1&3 piecing -------------------------------------------------
        let pairs13 = r1.len().min(r3.len());
        let ones: Vec<ShortRow<S>> = r1.drain(..pairs13).collect();
        let threes: Vec<ShortRow<S>> = r3.drain(..pairs13).collect();
        // A packed row per pair; warp granularity = 16 packed rows.
        part.n13_warps = pairs13.div_ceil(2 * MMA_M);
        let packed13 = part.n13_warps * 2 * MMA_M;
        part.perm13 = vec![NO_ROW; part.n13_warps * 32];
        for slot in 0..packed13 {
            // packed row `slot` lives in block b = slot/8, local row r = slot%8
            let (b, r) = (slot / MMA_M, slot % MMA_M);
            let w = b / 2; // warp
            let i0 = (b % 2) * 2; // iteration of the "1" piece (0 or 2)
            if slot < pairs13 {
                let (one_id, one_elems) = &ones[slot];
                let (three_id, three_elems) = &threes[slot];
                part.push_elem(one_elems[0]);
                for &e in three_elems.iter() {
                    part.push_elem(e);
                }
                part.perm13[w * 32 + i0 * MMA_M + r] = *one_id;
                part.perm13[w * 32 + (i0 + 1) * MMA_M + r] = *three_id;
            } else {
                part.push_zeros(MMA_K);
            }
        }

        // --- pure length-4 (plus padded leftovers) -----------------------
        part.off4 = part.vals.len();
        let mut fours: Vec<(u32, [(u32, S); 4])> = Vec::new();
        for (id, e) in r4 {
            fours.push((id, [e[0], e[1], e[2], e[3]]));
        }
        for (id, e) in r3 {
            // leftover length-3 rows: pad one zero (paper §3.2)
            fours.push((id, [e[0], e[1], e[2], (0, S::zero())]));
        }
        if r2.len() % 2 == 1 {
            // an odd leftover length-2 row: pad two zeros (the paper leaves
            // this case unspecified; padding keeps it in the MMA path)
            let (id, e) = r2.pop().expect("odd length checked");
            fours.push((id, [e[0], e[1], (0, S::zero()), (0, S::zero())]));
        }
        part.n4_warps = fours.len().div_ceil(4 * MMA_M);
        let packed4 = part.n4_warps * 4 * MMA_M;
        part.perm4 = vec![NO_ROW; part.n4_warps * 32];
        for slot in 0..packed4 {
            let (b, r) = (slot / MMA_M, slot % MMA_M);
            let (w, i) = (b / 4, b % 4);
            if let Some((id, elems)) = fours.get(slot) {
                for &e in elems.iter() {
                    part.push_elem(e);
                }
                part.perm4[w * 32 + i * MMA_M + r] = *id;
            } else {
                part.push_zeros(MMA_K);
            }
        }

        // --- 2&2 piecing --------------------------------------------------
        part.off22 = part.vals.len();
        let pairs22 = r2.len() / 2;
        part.n22_warps = pairs22.div_ceil(2 * MMA_M);
        let packed22 = part.n22_warps * 2 * MMA_M;
        part.perm22 = vec![NO_ROW; part.n22_warps * 32];
        for slot in 0..packed22 {
            let (b, r) = (slot / MMA_M, slot % MMA_M);
            let w = b / 2;
            let i0 = (b % 2) * 2;
            if slot < pairs22 {
                let (a_id, a_elems) = &r2[2 * slot];
                let (b_id, b_elems) = &r2[2 * slot + 1];
                part.push_elem(a_elems[0]);
                part.push_elem(a_elems[1]);
                part.push_elem(b_elems[0]);
                part.push_elem(b_elems[1]);
                part.perm22[w * 32 + i0 * MMA_M + r] = *a_id;
                part.perm22[w * 32 + (i0 + 1) * MMA_M + r] = *b_id;
            } else {
                part.push_zeros(MMA_K);
            }
        }

        // --- leftover singletons ------------------------------------------
        part.off1 = part.vals.len();
        part.n1 = r1.len();
        for (id, e) in r1 {
            part.push_elem(e[0]);
            part.perm1.push(id);
        }

        part
    }

    #[cfg(test)]
    fn push_elem(&mut self, (c, v): (u32, S)) {
        self.cids.push(c);
        self.vals.push(v);
    }

    #[cfg(test)]
    fn push_zeros(&mut self, n: usize) {
        for _ in 0..n {
            self.push_elem((0, S::zero()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::BLOCK_ELEMS;
    use dasp_sparse::Coo;

    /// CSR equivalent of the staged fixtures: row `id` holds `len` elements
    /// `(c, id*10 + c + 1)`.
    fn csr_of(rows: &[(u32, usize)]) -> Csr<f64> {
        let nrows = rows
            .iter()
            .map(|&(id, _)| id as usize + 1)
            .max()
            .unwrap_or(1);
        let mut coo = Coo::new(nrows, MMA_K);
        for &(id, len) in rows {
            for c in 0..len as u32 {
                coo.push(id as usize, c as usize, (id * 10 + c + 1) as f64);
            }
        }
        coo.to_csr()
    }

    fn build(rows: &[(u32, usize)]) -> ShortPart<f64> {
        let ids: Vec<u32> = rows.iter().map(|&(id, _)| id).collect();
        ShortPart::build_csr(&csr_of(rows), &ids, true, &Executor::seq())
    }

    #[test]
    fn pairs_ones_with_threes() {
        // 3 singles + 2 threes -> 2 pairs, 1 leftover single.
        let p = build(&[(0, 1), (1, 3), (2, 1), (3, 3), (4, 1)]);
        assert_eq!(p.n13_warps, 1);
        assert_eq!(p.n1, 1);
        assert_eq!(p.perm1, vec![4]);
        // Pair 0 = rows (0, 1): packed row 0 = [a0 | b0 b1 b2]
        assert_eq!(p.vals[0], 1.0); // row 0's single element
        assert_eq!(p.vals[1], 11.0); // row 1's first element
                                     // perm: warp 0, block 0, iteration 0 slot 0 -> row 0; iteration 1
                                     // slot 0 -> row 1.
        assert_eq!(p.perm13[0], 0);
        assert_eq!(p.perm13[MMA_M], 1);
        assert_eq!(p.perm13[1], 2);
        assert_eq!(p.perm13[MMA_M + 1], 3);
        assert_eq!(p.num_rows(), 5);
    }

    #[test]
    fn leftover_threes_become_fours() {
        // 1 single, 3 threes: one 1&3 pair, two threes padded into fours.
        let p = build(&[(0, 1), (1, 3), (2, 3), (3, 3)]);
        assert_eq!(p.n13_warps, 1);
        assert_eq!(p.n4_warps, 1);
        assert_eq!(p.n1, 0);
        // The fours hold rows 2 and 3 with a zero pad in position 3.
        assert_eq!(p.vals[p.off4 + 3], 0.0);
        assert_eq!(p.cids[p.off4 + 3], 0);
        assert_eq!(p.perm4[0], 2);
        assert_eq!(p.perm4[1], 3);
    }

    #[test]
    fn twos_paired_and_odd_leftover_padded() {
        let p = build(&[(0, 2), (1, 2), (2, 2)]);
        // rows 0&1 pair in the 2&2 category; row 2 is the odd one out,
        // padded into the fours.
        assert_eq!(p.n22_warps, 1);
        assert_eq!(p.n4_warps, 1);
        assert_eq!(p.perm22[0], 0);
        assert_eq!(p.perm22[MMA_M], 1);
        assert_eq!(p.perm4[0], 2);
        assert_eq!(p.num_rows(), 3);
    }

    #[test]
    fn pure_fours_fill_blocks() {
        let rows: Vec<_> = (0..40).map(|i| (i, 4)).collect();
        let p = build(&rows);
        // 40 fours -> 2 warps of 32 slots (second warp 8 rows + 24 pads).
        assert_eq!(p.n4_warps, 2);
        assert_eq!(p.vals.len(), 2 * 4 * BLOCK_ELEMS);
        assert_eq!(p.perm4.iter().filter(|&&r| r != NO_ROW).count(), 40);
        // slot order: warp 0 holds rows 0..32 as blocks of 8.
        assert_eq!(p.perm4[0], 0);
        assert_eq!(p.perm4[8], 8);
        assert_eq!(p.perm4[31], 31);
        assert_eq!(p.perm4[32], 32);
    }

    #[test]
    fn padding_slots_are_zeroed() {
        let p = build(&[(7, 1), (8, 3)]);
        // One pair; 15 packed-row pads of 4 zero elements each.
        assert_eq!(p.vals.len(), 16 * MMA_K);
        let nonzero = p.vals.iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, 4);
        assert_eq!(p.nnz_orig, 4);
    }

    #[test]
    fn empty_input_is_empty_part() {
        let empty = Coo::<f64>::new(1, 1).to_csr();
        let p = ShortPart::<f64>::build_csr(&empty, &[], true, &Executor::seq());
        assert_eq!(p.num_rows(), 0);
        assert_eq!(p.vals.len(), 0);
        assert_eq!(p.n13_warps + p.n4_warps + p.n22_warps + p.n1, 0);
    }

    #[test]
    fn matches_append_based_reference_and_parallel_run() {
        // Every length 1..=4 in a scrambled interleaving, enough rows to
        // exercise multi-warp packing, leftover threes, and the odd two.
        let lens: Vec<(u32, usize)> = (0..120u32).map(|i| (i, 1 + (i as usize * 7) % 4)).collect();
        let csr = csr_of(&lens);
        let ids: Vec<u32> = lens.iter().map(|&(id, _)| id).collect();
        let staged: Vec<ShortRow<f64>> = lens
            .iter()
            .map(|&(id, _)| (id, csr.row(id as usize).collect()))
            .collect();

        for piecing in [true, false] {
            let new = ShortPart::build_csr(&csr, &ids, piecing, &Executor::seq());
            let par =
                ShortPart::build_csr(&csr, &ids, piecing, &Executor::par_with_threads(Some(4)));
            let reference = if piecing {
                ShortPart::build(staged.clone())
            } else {
                ShortPart::build_padded_only(staged.clone())
            };
            assert_eq!(new, reference);
            assert_eq!(new, par);
        }
    }
}

//! CSR -> DASP conversion (the preprocessing step of paper Fig. 13).

use dasp_fp16::Scalar;
use dasp_sparse::Csr;
use dasp_trace::Tracer;

use crate::consts::DaspParams;
use crate::format::{DaspMatrix, LongPart, MediumPart, ShortPart};

/// Classifies rows and builds all three category parts.
pub(crate) fn build<S: Scalar>(csr: &Csr<S>, params: DaspParams) -> DaspMatrix<S> {
    build_traced(csr, params, &Tracer::disabled())
}

/// [`build`] with each preprocessing phase wrapped in a span: a
/// `preprocess` root with `preprocess.categorize`, `preprocess.sort`, and
/// `preprocess.build.{long,medium,short}` children. With a disabled
/// tracer the spans are inert and this *is* the plain build path.
pub(crate) fn build_traced<S: Scalar>(
    csr: &Csr<S>,
    params: DaspParams,
    tracer: &Tracer,
) -> DaspMatrix<S> {
    assert!(
        params.max_len > 4,
        "MAX_LEN must exceed the short-row bound"
    );
    let root = tracer.span("preprocess");

    let mut long_rows: Vec<(u32, Vec<(u32, S)>)> = Vec::new();
    let mut medium_rows: Vec<(u32, Vec<(u32, S)>)> = Vec::new();
    let mut short_rows: Vec<(u32, Vec<(u32, S)>)> = Vec::new();
    {
        let mut sp = root.child("preprocess.categorize");
        for i in 0..csr.rows {
            let len = csr.row_len(i);
            if len == 0 {
                continue; // empty rows belong to no category
            }
            let elems: Vec<(u32, S)> = csr.row(i).collect();
            if len > params.max_len {
                long_rows.push((i as u32, elems));
            } else if len > 4 {
                medium_rows.push((i as u32, elems));
            } else {
                short_rows.push((i as u32, elems));
            }
        }
        sp.add_arg("rows_long", long_rows.len());
        sp.add_arg("rows_medium", medium_rows.len());
        sp.add_arg("rows_short", short_rows.len());
    }

    {
        // Stable descending sort by length (paper §3.2: "sorted in a
        // stable descending order").
        let _sp = root.child("preprocess.sort");
        medium_rows.sort_by_key(|(_, e)| std::cmp::Reverse(e.len()));
    }

    let long = {
        let mut sp = root.child("preprocess.build.long");
        let mut long = LongPart::empty();
        for (r, elems) in &long_rows {
            long.push_row(*r, elems);
        }
        sp.add_arg("groups", long.num_groups());
        long
    };
    let medium = {
        let mut sp = root.child("preprocess.build.medium");
        let medium = MediumPart::build(&medium_rows, params.threshold);
        sp.add_arg("rowblocks", medium.num_rowblocks());
        medium
    };
    let short = {
        let mut sp = root.child("preprocess.build.short");
        let short = if params.short_piecing {
            ShortPart::build(short_rows)
        } else {
            ShortPart::build_padded_only(short_rows)
        };
        sp.add_arg("warps", short.n13_warps + short.n22_warps + short.n4_warps);
        short
    };

    DaspMatrix {
        rows: csr.rows,
        cols: csr.cols,
        nnz: csr.nnz(),
        long,
        medium,
        short,
        params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_sparse::Coo;

    /// A matrix with rows in every category:
    /// row 0: 300 nonzeros (long), row 1: empty, row 2: 10 (medium),
    /// rows 3..20: 6 each (medium), rows 20..40: lengths 1..=4 cycling.
    fn mixed() -> Csr<f64> {
        let mut m = Coo::new(40, 400);
        for c in 0..300 {
            m.push(0, c, 1.0);
        }
        for c in 0..10 {
            m.push(2, c * 3, 2.0);
        }
        for r in 3..20 {
            for c in 0..6 {
                m.push(r, c * 7 + r, 3.0);
            }
        }
        for r in 20..40 {
            let len = (r - 20) % 4 + 1;
            for c in 0..len {
                m.push(r, c * 11 + r, 4.0);
            }
        }
        m.to_csr()
    }

    #[test]
    fn categories_partition_the_rows() {
        let m = mixed();
        let d = DaspMatrix::from_csr(&m);
        let s = d.category_stats();
        assert_eq!(s.rows_long, 1);
        assert_eq!(s.rows_medium, 18);
        assert_eq!(s.rows_short, 20);
        assert_eq!(s.rows_empty, 1);
        assert_eq!(
            s.rows_long + s.rows_medium + s.rows_short + s.rows_empty,
            40
        );
        assert_eq!(s.nnz_long + s.nnz_medium + s.nnz_short, m.nnz());
    }

    #[test]
    fn medium_rows_sorted_descending_and_stable() {
        let m = mixed();
        let d = DaspMatrix::from_csr(&m);
        let lens: Vec<usize> = d
            .medium
            .rows
            .iter()
            .map(|&r| m.row_len(r as usize))
            .collect();
        for w in lens.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // Rows 3..20 all have length 6; stability keeps original order.
        assert_eq!(
            &d.medium.rows[1..],
            (3u32..20).collect::<Vec<_>>().as_slice()
        );
    }

    #[test]
    fn boundary_lengths_classify_per_paper() {
        // len 4 -> short; len 5 -> medium; len 256 -> medium; len 257 -> long
        let mut m = Coo::<f64>::new(4, 300);
        for c in 0..4 {
            m.push(0, c, 1.0);
        }
        for c in 0..5 {
            m.push(1, c, 1.0);
        }
        for c in 0..256 {
            m.push(2, c, 1.0);
        }
        for c in 0..257 {
            m.push(3, c, 1.0);
        }
        let d = DaspMatrix::from_csr(&m.to_csr());
        assert_eq!(d.short.num_rows(), 1);
        assert_eq!(d.medium.rows, vec![2, 1]);
        assert_eq!(d.long.rows, vec![3]);
    }

    #[test]
    fn custom_max_len_moves_the_boundary() {
        let mut m = Coo::<f64>::new(2, 300);
        for c in 0..100 {
            m.push(0, c, 1.0);
        }
        for c in 0..20 {
            m.push(1, c, 1.0);
        }
        let d = DaspMatrix::with_params(
            &m.to_csr(),
            DaspParams {
                max_len: 64,
                threshold: 0.75,
                short_piecing: true,
            },
        );
        assert_eq!(d.long.rows, vec![0]);
        assert_eq!(d.medium.rows, vec![1]);
    }

    #[test]
    fn fill_rate_is_small_for_friendly_structure() {
        // All rows length 4: zero fill needed at all.
        let mut m = Coo::<f64>::new(64, 64);
        for r in 0..64 {
            for c in 0..4 {
                m.push(r, (r + c * 16) % 64, 1.0);
            }
        }
        let d = DaspMatrix::from_csr(&m.to_csr());
        assert_eq!(d.category_stats().fill_rate(), 0.0);
    }

    #[test]
    fn empty_matrix_builds() {
        let m = Csr::<f64>::empty(10, 10);
        let d = DaspMatrix::from_csr(&m);
        let s = d.category_stats();
        assert_eq!(s.rows_empty, 10);
        assert_eq!(s.nnz, 0);
    }
}

//! CSR -> DASP conversion (the preprocessing step of paper Fig. 13).
//!
//! The build is an *analysis/execute* pipeline: a cheap sequential counting
//! pass over `csr.row_ptr` fixes every element's destination slot, then the
//! copy work fans out over the configured [`Executor`] in contiguous
//! chunks. No stage stages elements in per-row `Vec`s — the part builders
//! read straight from the borrowed CSR arrays — and every write is
//! position-based through a [`SharedSlice`](dasp_simt::SharedSlice), so the
//! output is bit-identical whichever executor runs it.

use dasp_fp16::Scalar;
use dasp_simt::{Executor, NoProbe, SharedSlice};
use dasp_sparse::Csr;
use dasp_trace::{Span, Tracer};

use crate::consts::DaspParams;
use crate::format::{DaspMatrix, LongPart, MediumPart, ShortPart};

/// Rows per categorize chunk: classifying a row is a two-load affair, so
/// chunks must stay large for the fan-out to pay.
const MIN_CHUNK_CATEGORIZE: usize = 4096;

/// Splits `items` into contiguous chunks for `exec`, returning
/// `(n_chunks, chunk_len)` (the last chunk may be short).
///
/// Sequential executors — and inputs too small to split `2 * min_chunk`
/// ways — get a single chunk. Parallel executors get at most 8 chunks per
/// thread (cheap dynamic balance without shredding the input) and no chunk
/// smaller than `min_chunk`.
pub(crate) fn chunk_plan(exec: &Executor, items: usize, min_chunk: usize) -> (usize, usize) {
    let min_chunk = min_chunk.max(1);
    if items == 0 {
        return (0, 1);
    }
    if let Executor::Par(p) = exec {
        if items >= 2 * min_chunk {
            let threads = p
                .threads()
                .or_else(|| std::thread::available_parallelism().map(|n| n.get()).ok())
                .unwrap_or(1);
            let chunks = items.div_ceil(min_chunk).min(threads * 8).max(1);
            let chunk = items.div_ceil(chunks);
            return (items.div_ceil(chunk), chunk);
        }
    }
    (1, items)
}

/// Runs `body(chunk_index)` for every chunk of a [`chunk_plan`].
///
/// The parallel branch re-arms the executor with a zero inline-fallback
/// threshold: chunk counts are far below the warp-count threshold the
/// kernels tune for, but each chunk here carries `min_chunk`-scale work.
pub(crate) fn run_planned<F>(exec: &Executor, n_chunks: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    match exec {
        Executor::Par(p) if n_chunks > 1 => {
            Executor::Par(p.with_seq_threshold(0)).run(n_chunks, &mut NoProbe, |c, _| body(c));
        }
        _ => {
            for c in 0..n_chunks {
                body(c);
            }
        }
    }
}

/// Fans `body(lo, hi)` out over contiguous `items` ranges sized by
/// [`chunk_plan`]. The workhorse of every build phase.
pub(crate) fn run_chunks<F>(exec: &Executor, items: usize, min_chunk: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    let (n_chunks, chunk) = chunk_plan(exec, items, min_chunk);
    run_planned(exec, n_chunks, |c| {
        body(c * chunk, ((c + 1) * chunk).min(items))
    });
}

/// Classifies rows and builds all three category parts.
pub(crate) fn build<S: Scalar>(csr: &Csr<S>, params: DaspParams) -> DaspMatrix<S> {
    build_traced(csr, params, &Tracer::disabled())
}

/// [`build`] with tracing, on the environment-selected executor.
pub(crate) fn build_traced<S: Scalar>(
    csr: &Csr<S>,
    params: DaspParams,
    tracer: &Tracer,
) -> DaspMatrix<S> {
    build_traced_with(csr, params, tracer, &Executor::from_env())
}

/// [`build`] with each preprocessing phase wrapped in a span: a
/// `preprocess` root with `preprocess.categorize`, `preprocess.sort`, and
/// `preprocess.build.{long,medium,short}` children. With a disabled
/// tracer the spans are inert and this *is* the plain build path.
pub(crate) fn build_traced_with<S: Scalar>(
    csr: &Csr<S>,
    params: DaspParams,
    tracer: &Tracer,
    exec: &Executor,
) -> DaspMatrix<S> {
    assert!(
        params.max_len > 4,
        "MAX_LEN must exceed the short-row bound"
    );
    let root = tracer.span("preprocess");
    build_under(csr, params, &root, exec)
}

/// Per-chunk categorize output: row ids by category, in row order.
#[derive(Default)]
struct Buckets {
    long: Vec<u32>,
    medium: Vec<u32>,
    short: Vec<u32>,
}

/// The phase pipeline, recording its spans as children of `root` (which
/// [`build_traced_with`] names `preprocess`; [`DaspPlan::analyze`] reuses
/// this under its own root so analysis traces read identically).
///
/// [`DaspPlan::analyze`]: crate::format::DaspPlan::analyze
pub(crate) fn build_under<S: Scalar>(
    csr: &Csr<S>,
    params: DaspParams,
    root: &Span,
    exec: &Executor,
) -> DaspMatrix<S> {
    // Categorize: each chunk classifies its row range into id buckets;
    // concatenating buckets in chunk order reproduces the sequential
    // row-order scan exactly.
    let mut long_ids: Vec<u32> = Vec::new();
    let mut medium_ids: Vec<u32> = Vec::new();
    let mut short_ids: Vec<u32> = Vec::new();
    {
        let mut sp = root.child("preprocess.categorize");
        let (n_chunks, chunk) = chunk_plan(exec, csr.rows, MIN_CHUNK_CATEGORIZE);
        let mut buckets: Vec<Buckets> = (0..n_chunks).map(|_| Buckets::default()).collect();
        {
            let shared = SharedSlice::new(&mut buckets);
            run_planned(exec, n_chunks, |c| {
                let mut b = Buckets::default();
                for i in c * chunk..((c + 1) * chunk).min(csr.rows) {
                    let len = csr.row_len(i);
                    if len == 0 {
                        continue; // empty rows belong to no category
                    }
                    if len > params.max_len {
                        b.long.push(i as u32);
                    } else if len > 4 {
                        b.medium.push(i as u32);
                    } else {
                        b.short.push(i as u32);
                    }
                }
                shared.write(c, b);
            });
        }
        for b in buckets {
            long_ids.extend_from_slice(&b.long);
            medium_ids.extend_from_slice(&b.medium);
            short_ids.extend_from_slice(&b.short);
        }
        sp.add_arg("rows_long", long_ids.len());
        sp.add_arg("rows_medium", medium_ids.len());
        sp.add_arg("rows_short", short_ids.len());
    }

    {
        // Stable descending sort by length (paper §3.2: "sorted in a
        // stable descending order"). With `params.reorder` on, equal
        // lengths additionally order by a minhash similarity signature of
        // the row's column set, bucketing overlapping rows into the same
        // 8-row block for x-locality; the length sequence — and therefore
        // every piece of block geometry and the fill rate — is unchanged.
        let mut sp = root.child("preprocess.sort");
        let before = medium_ids.clone();
        if params.reorder {
            medium_ids.sort_by_cached_key(|&id| {
                let i = id as usize;
                let cols = &csr.col_idx[csr.row_ptr[i]..csr.row_ptr[i + 1]];
                (
                    std::cmp::Reverse(csr.row_len(i)),
                    crate::format::reorder::signature(cols),
                )
            });
        } else {
            medium_ids.sort_by_key(|&id| std::cmp::Reverse(csr.row_len(id as usize)));
        }
        let moved = before
            .iter()
            .zip(&medium_ids)
            .filter(|(a, b)| a != b)
            .count();
        sp.add_arg("rows_sorted", medium_ids.len());
        sp.add_arg("moved", moved);
        sp.add_arg("reorder", params.reorder);
    }

    let long = {
        let mut sp = root.child("preprocess.build.long");
        let long = LongPart::build_csr(csr, &long_ids, exec);
        sp.add_arg("groups", long.num_groups());
        long
    };
    let medium = {
        let mut sp = root.child("preprocess.build.medium");
        let medium = MediumPart::build_csr(csr, &medium_ids, params.threshold, exec);
        sp.add_arg("rowblocks", medium.num_rowblocks());
        medium
    };
    let short = {
        let mut sp = root.child("preprocess.build.short");
        let short = ShortPart::build_csr(csr, &short_ids, params.short_piecing, exec);
        sp.add_arg("warps", short.n13_warps + short.n22_warps + short.n4_warps);
        short
    };

    DaspMatrix {
        rows: csr.rows,
        cols: csr.cols,
        nnz: csr.nnz(),
        long,
        medium,
        short,
        params,
        plan: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_sparse::Coo;

    /// A matrix with rows in every category:
    /// row 0: 300 nonzeros (long), row 1: empty, row 2: 10 (medium),
    /// rows 3..20: 6 each (medium), rows 20..40: lengths 1..=4 cycling.
    fn mixed() -> Csr<f64> {
        let mut m = Coo::new(40, 400);
        for c in 0..300 {
            m.push(0, c, 1.0);
        }
        for c in 0..10 {
            m.push(2, c * 3, 2.0);
        }
        for r in 3..20 {
            for c in 0..6 {
                m.push(r, c * 7 + r, 3.0);
            }
        }
        for r in 20..40 {
            let len = (r - 20) % 4 + 1;
            for c in 0..len {
                m.push(r, c * 11 + r, 4.0);
            }
        }
        m.to_csr()
    }

    /// The pre-refactor build path: per-row element collects, append-based
    /// part builders. The zero-copy path must reproduce it bit for bit.
    fn reference_build(csr: &Csr<f64>, params: DaspParams) -> DaspMatrix<f64> {
        let mut long_rows: Vec<(u32, Vec<(u32, f64)>)> = Vec::new();
        let mut medium_rows: Vec<(u32, Vec<(u32, f64)>)> = Vec::new();
        let mut short_rows: Vec<(u32, Vec<(u32, f64)>)> = Vec::new();
        for i in 0..csr.rows {
            let len = csr.row_len(i);
            if len == 0 {
                continue;
            }
            let elems: Vec<(u32, f64)> = csr.row(i).collect();
            if len > params.max_len {
                long_rows.push((i as u32, elems));
            } else if len > 4 {
                medium_rows.push((i as u32, elems));
            } else {
                short_rows.push((i as u32, elems));
            }
        }
        medium_rows.sort_by_key(|(_, e)| std::cmp::Reverse(e.len()));
        let mut long = LongPart::empty();
        for (r, elems) in &long_rows {
            long.push_row(*r, elems);
        }
        let medium = MediumPart::build(&medium_rows, params.threshold);
        let short = if params.short_piecing {
            ShortPart::build(short_rows)
        } else {
            ShortPart::build_padded_only(short_rows)
        };
        DaspMatrix {
            rows: csr.rows,
            cols: csr.cols,
            nnz: csr.nnz(),
            long,
            medium,
            short,
            params,
            plan: None,
        }
    }

    #[test]
    fn zero_copy_build_is_bit_identical_to_reference() {
        let m = mixed();
        for piecing in [true, false] {
            let params = DaspParams {
                short_piecing: piecing,
                ..DaspParams::default()
            };
            let want = reference_build(&m, params);
            let seq = build_traced_with(&m, params, &Tracer::disabled(), &Executor::seq());
            let par = build_traced_with(
                &m,
                params,
                &Tracer::disabled(),
                &Executor::par_with_threads(Some(4)),
            );
            assert_eq!(seq, want);
            assert_eq!(par, want);
        }
    }

    #[test]
    fn chunk_plan_shapes() {
        let seq = Executor::seq();
        let par = Executor::par_with_threads(Some(4));
        // Sequential: always one chunk.
        assert_eq!(chunk_plan(&seq, 10_000, 64), (1, 10_000));
        // Empty: no chunks.
        assert_eq!(chunk_plan(&par, 0, 64), (0, 1));
        // Too small to split: one chunk.
        assert_eq!(chunk_plan(&par, 100, 64), (1, 100));
        // Splittable: chunks cover the input exactly, none below min.
        let (n, chunk) = chunk_plan(&par, 10_000, 64);
        assert!(n > 1);
        assert!(chunk >= 64);
        assert!((n - 1) * chunk < 10_000 && n * chunk >= 10_000);
    }

    #[test]
    fn run_chunks_covers_every_item_once() {
        let par = Executor::par_with_threads(Some(4));
        let n = 5000;
        let mut hits = vec![0u8; n];
        {
            let shared = SharedSlice::new(&mut hits);
            run_chunks(&par, n, 16, |lo, hi| {
                for i in lo..hi {
                    shared.write(i, 1);
                }
            });
        }
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn categories_partition_the_rows() {
        let m = mixed();
        let d = DaspMatrix::from_csr(&m);
        let s = d.category_stats();
        assert_eq!(s.rows_long, 1);
        assert_eq!(s.rows_medium, 18);
        assert_eq!(s.rows_short, 20);
        assert_eq!(s.rows_empty, 1);
        assert_eq!(
            s.rows_long + s.rows_medium + s.rows_short + s.rows_empty,
            40
        );
        assert_eq!(s.nnz_long + s.nnz_medium + s.nnz_short, m.nnz());
    }

    #[test]
    fn medium_rows_sorted_descending_and_stable() {
        let m = mixed();
        let d = DaspMatrix::from_csr(&m);
        let lens: Vec<usize> = d
            .medium
            .rows
            .iter()
            .map(|&r| m.row_len(r as usize))
            .collect();
        for w in lens.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // Rows 3..20 all have length 6; stability keeps original order.
        assert_eq!(
            &d.medium.rows[1..],
            (3u32..20).collect::<Vec<_>>().as_slice()
        );
    }

    #[test]
    fn sort_span_reports_rows_sorted_and_moved() {
        let m = mixed();
        let tracer = Tracer::new();
        let _ = DaspMatrix::from_csr_traced(&m, &tracer);
        let trace = tracer.take_trace();
        let sort = trace
            .spans
            .iter()
            .find(|s| s.name == "preprocess.sort")
            .expect("sort span recorded");
        let arg = |key: &str| {
            sort.args
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .expect("sort span arg")
        };
        // 18 medium rows; row 2 (len 10, the longest) is already first in
        // row order, so the stable sort keeps every row in place.
        assert_eq!(arg("rows_sorted"), "18");
        assert_eq!(arg("moved"), "0");
    }

    #[test]
    fn sort_span_counts_moved_rows() {
        // Two medium rows in ascending length order: both move.
        let mut m = Coo::<f64>::new(2, 100);
        for c in 0..5 {
            m.push(0, c, 1.0);
        }
        for c in 0..90 {
            m.push(1, c, 1.0);
        }
        let tracer = Tracer::new();
        let _ = DaspMatrix::from_csr_traced(&m.to_csr(), &tracer);
        let trace = tracer.take_trace();
        let sort = trace
            .spans
            .iter()
            .find(|s| s.name == "preprocess.sort")
            .expect("sort span recorded");
        assert!(sort.args.contains(&("rows_sorted".into(), "2".into())));
        assert!(sort.args.contains(&("moved".into(), "2".into())));
    }

    #[test]
    fn boundary_lengths_classify_per_paper() {
        // len 4 -> short; len 5 -> medium; len 256 -> medium; len 257 -> long
        let mut m = Coo::<f64>::new(4, 300);
        for c in 0..4 {
            m.push(0, c, 1.0);
        }
        for c in 0..5 {
            m.push(1, c, 1.0);
        }
        for c in 0..256 {
            m.push(2, c, 1.0);
        }
        for c in 0..257 {
            m.push(3, c, 1.0);
        }
        let d = DaspMatrix::from_csr(&m.to_csr());
        assert_eq!(d.short.num_rows(), 1);
        assert_eq!(d.medium.rows, vec![2, 1]);
        assert_eq!(d.long.rows, vec![3]);
    }

    #[test]
    fn custom_max_len_moves_the_boundary() {
        let mut m = Coo::<f64>::new(2, 300);
        for c in 0..100 {
            m.push(0, c, 1.0);
        }
        for c in 0..20 {
            m.push(1, c, 1.0);
        }
        let d = DaspMatrix::with_params(
            &m.to_csr(),
            DaspParams {
                max_len: 64,
                ..DaspParams::default()
            },
        );
        assert_eq!(d.long.rows, vec![0]);
        assert_eq!(d.medium.rows, vec![1]);
    }

    #[test]
    fn fill_rate_is_small_for_friendly_structure() {
        // All rows length 4: zero fill needed at all.
        let mut m = Coo::<f64>::new(64, 64);
        for r in 0..64 {
            for c in 0..4 {
                m.push(r, (r + c * 16) % 64, 1.0);
            }
        }
        let d = DaspMatrix::from_csr(&m.to_csr());
        assert_eq!(d.category_stats().fill_rate(), 0.0);
    }

    #[test]
    fn empty_matrix_builds() {
        let m = Csr::<f64>::empty(10, 10);
        let d = DaspMatrix::from_csr(&m);
        let s = d.category_stats();
        assert_eq!(s.rows_empty, 10);
        assert_eq!(s.nnz, 0);
    }
}

//! Binary serialization of the converted DASP format.
//!
//! The paper's §4.4 argument — preprocessing amortizes over many SpMV
//! calls — extends across *runs* if the converted format can be saved.
//! This module writes a small versioned container (`DASPFMT2`):
//!
//! ```text
//! magic    8 bytes  "DASPFMT2"
//! scalar   1 byte   storage width (2 = fp16, 4 = fp32, 8 = fp64)
//! header   7 x u64  rows, cols, nnz, max_len, threshold (f64 bits),
//!                   short_piecing, reserved
//! arrays   length-prefixed little-endian arrays, fixed order
//! plan     1 byte   0 = none, 1 = a `DASPPLN1` plan container follows
//! ```
//!
//! Version 2 appends the optional [`DaspPlan`] trailer so an analysis
//! plan ships alongside (or, via [`DaspPlan::write_to`], ahead of) the
//! values; `DASPFMT1` containers (no trailer) still read. Reading
//! validates the magic, the scalar width against `S`, and runs the full
//! structural [`DaspMatrix::validate`] (and [`DaspPlan`] validation, plus
//! the plan-matrix pattern match) before returning, so corrupted or
//! truncated files are rejected rather than producing wrong results.

use std::io::{Read, Write};
use std::sync::Arc;

use dasp_fp16::Scalar;

use crate::consts::DaspParams;
use crate::format::{DaspMatrix, DaspPlan, FormatError, LongPart, MediumPart, ShortPart};

const MAGIC_V1: &[u8; 8] = b"DASPFMT1";
const MAGIC: &[u8; 8] = b"DASPFMT2";
const PLAN_MAGIC: &[u8; 8] = b"DASPPLN1";

/// Bit 0 of the header flags word (the former reserved field): the
/// medium rows were tie-broken by the row-similarity reorder pass.
const FLAG_REORDER: u64 = 1;

/// Packs the boolean params that ride in the header flags word.
fn param_flags(p: &DaspParams) -> u64 {
    if p.reorder {
        FLAG_REORDER
    } else {
        0
    }
}

/// An error while reading or writing a serialized format.
#[derive(Debug)]
pub enum SerError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The bytes are not a DASP format container, or are corrupted.
    Malformed(String),
    /// The container holds a different scalar width than requested.
    WrongScalar {
        /// Width stored in the file.
        found: u8,
        /// Width of the requested `S`.
        expected: u8,
    },
    /// The decoded structure fails [`DaspMatrix::validate`].
    Invalid(FormatError),
}

impl std::fmt::Display for SerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerError::Io(e) => write!(f, "io error: {e}"),
            SerError::Malformed(s) => write!(f, "malformed container: {s}"),
            SerError::WrongScalar { found, expected } => {
                write!(f, "scalar width {found} in file, expected {expected}")
            }
            SerError::Invalid(e) => write!(f, "decoded format invalid: {e}"),
        }
    }
}

impl std::error::Error for SerError {}

impl From<std::io::Error> for SerError {
    fn from(e: std::io::Error) -> Self {
        SerError::Io(e)
    }
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, SerError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_len<R: Read>(r: &mut R, cap: u64) -> Result<usize, SerError> {
    let n = read_u64(r)?;
    if n > cap {
        return Err(SerError::Malformed(format!(
            "array length {n} exceeds sanity cap {cap}"
        )));
    }
    Ok(n as usize)
}

/// Pre-allocation clamp for length-prefixed arrays. A corrupt length prefix
/// inside the sanity cap could still demand gigabytes up front; growing by
/// push past this bound trades a few reallocations on huge (legitimate)
/// arrays for corruption never reserving more than ~8 MiB speculatively.
const PREALLOC_CLAMP: usize = 1 << 20;

fn write_usizes<W: Write>(w: &mut W, v: &[usize]) -> std::io::Result<()> {
    write_u64(w, v.len() as u64)?;
    for &x in v {
        write_u64(w, x as u64)?;
    }
    Ok(())
}

fn read_usizes<R: Read>(r: &mut R, cap: u64) -> Result<Vec<usize>, SerError> {
    let n = read_len(r, cap)?;
    let mut out = Vec::with_capacity(n.min(PREALLOC_CLAMP));
    for _ in 0..n {
        out.push(read_u64(r)? as usize);
    }
    Ok(out)
}

fn write_u32s<W: Write>(w: &mut W, v: &[u32]) -> std::io::Result<()> {
    write_u64(w, v.len() as u64)?;
    for &x in v {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32s<R: Read>(r: &mut R, cap: u64) -> Result<Vec<u32>, SerError> {
    let n = read_len(r, cap)?;
    let mut out = Vec::with_capacity(n.min(PREALLOC_CLAMP));
    let mut b = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(u32::from_le_bytes(b));
    }
    Ok(out)
}

fn write_scalars<S: Scalar, W: Write>(w: &mut W, v: &[S]) -> std::io::Result<()> {
    write_u64(w, v.len() as u64)?;
    for x in v {
        // Values travel as f64 bits: lossless for every supported storage
        // width (f16/f32/f64 all embed exactly in f64).
        w.write_all(&x.to_f64().to_bits().to_le_bytes())?;
    }
    Ok(())
}

fn read_scalars<S: Scalar, R: Read>(r: &mut R, cap: u64) -> Result<Vec<S>, SerError> {
    let n = read_len(r, cap)?;
    let mut out = Vec::with_capacity(n.min(PREALLOC_CLAMP));
    let mut b = [0u8; 8];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(S::from_f64(f64::from_bits(u64::from_le_bytes(b))));
    }
    Ok(out)
}

impl<S: Scalar> DaspMatrix<S> {
    /// Writes the converted format to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&[S::BYTES as u8])?;
        write_u64(w, self.rows as u64)?;
        write_u64(w, self.cols as u64)?;
        write_u64(w, self.nnz as u64)?;
        write_u64(w, self.params.max_len as u64)?;
        write_u64(w, self.params.threshold.to_bits())?;
        write_u64(w, self.params.short_piecing as u64)?;
        // The former reserved word carries the flags bitset; bit 0 is the
        // reorder pass. Old readers ignored it, old writers wrote 0, so
        // reorder-off containers are byte-identical across versions.
        write_u64(w, param_flags(&self.params))?;

        write_scalars(w, &self.long.vals)?;
        write_u32s(w, &self.long.cids)?;
        write_usizes(w, &self.long.group_ptr)?;
        write_u32s(w, &self.long.rows)?;
        write_u64(w, self.long.nnz_orig as u64)?;

        write_scalars(w, &self.medium.reg_val)?;
        write_u32s(w, &self.medium.reg_cid)?;
        write_usizes(w, &self.medium.rowblock_ptr)?;
        write_scalars(w, &self.medium.irreg_val)?;
        write_u32s(w, &self.medium.irreg_cid)?;
        write_usizes(w, &self.medium.irreg_ptr)?;
        write_u32s(w, &self.medium.rows)?;
        write_u64(w, self.medium.nnz_orig as u64)?;

        write_scalars(w, &self.short.vals)?;
        write_u32s(w, &self.short.cids)?;
        write_u64(w, self.short.n13_warps as u64)?;
        write_u64(w, self.short.n4_warps as u64)?;
        write_u64(w, self.short.n22_warps as u64)?;
        write_u64(w, self.short.n1 as u64)?;
        write_u64(w, self.short.off4 as u64)?;
        write_u64(w, self.short.off22 as u64)?;
        write_u64(w, self.short.off1 as u64)?;
        write_u32s(w, &self.short.perm13)?;
        write_u32s(w, &self.short.perm4)?;
        write_u32s(w, &self.short.perm22)?;
        write_u32s(w, &self.short.perm1)?;
        write_u64(w, self.short.nnz_orig as u64)?;

        match &self.plan {
            Some(plan) => {
                w.write_all(&[1])?;
                plan.write_to(w)?;
            }
            None => w.write_all(&[0])?,
        }
        Ok(())
    }

    /// Reads a converted format from `r`, validating structure before
    /// returning.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, SerError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        let has_plan_trailer = match &magic {
            m if m == MAGIC => true,
            m if m == MAGIC_V1 => false, // v1: container ends at the arrays
            _ => return Err(SerError::Malformed("bad magic".into())),
        };
        let mut width = [0u8; 1];
        r.read_exact(&mut width)?;
        if width[0] as u64 != S::BYTES {
            return Err(SerError::WrongScalar {
                found: width[0],
                expected: S::BYTES as u8,
            });
        }
        let rows = read_u64(r)? as usize;
        let cols = read_u64(r)? as usize;
        let nnz = read_u64(r)? as usize;
        // Row/column ids travel as u32 in the format, so larger headers
        // can only come from corruption; nnz beyond 2^48 would mean a
        // multi-petabyte container. Reject before any allocation sizing.
        if rows > u32::MAX as usize || cols > u32::MAX as usize || nnz > 1 << 48 {
            return Err(SerError::Malformed(format!(
                "implausible header: rows {rows}, cols {cols}, nnz {nnz}"
            )));
        }
        let max_len = read_u64(r)? as usize;
        let threshold = f64::from_bits(read_u64(r)?);
        let short_piecing = read_u64(r)? != 0;
        let flags = read_u64(r)?;
        // Sanity cap for array lengths. The format's zero fill is bounded
        // by 64x for any legal parameterization (a 64-element long-row
        // group can hold as few as `max_len + 1 >= 6` nonzeros, a regular
        // medium block as few as 1 at tiny thresholds, a pieced short warp
        // as few as 4), so 64x plus slack rejects only corruption.
        let cap = (nnz as u64 + rows as u64 + 1024) * 64;

        let long = LongPart {
            vals: read_scalars(r, cap)?,
            cids: read_u32s(r, cap)?,
            group_ptr: read_usizes(r, cap)?,
            rows: read_u32s(r, cap)?,
            nnz_orig: read_u64(r)? as usize,
        };
        let medium = MediumPart {
            reg_val: read_scalars(r, cap)?,
            reg_cid: read_u32s(r, cap)?,
            rowblock_ptr: read_usizes(r, cap)?,
            irreg_val: read_scalars(r, cap)?,
            irreg_cid: read_u32s(r, cap)?,
            irreg_ptr: read_usizes(r, cap)?,
            rows: read_u32s(r, cap)?,
            nnz_orig: read_u64(r)? as usize,
        };
        let short = ShortPart {
            vals: read_scalars(r, cap)?,
            cids: read_u32s(r, cap)?,
            n13_warps: read_u64(r)? as usize,
            n4_warps: read_u64(r)? as usize,
            n22_warps: read_u64(r)? as usize,
            n1: read_u64(r)? as usize,
            off4: read_u64(r)? as usize,
            off22: read_u64(r)? as usize,
            off1: read_u64(r)? as usize,
            perm13: read_u32s(r, cap)?,
            perm4: read_u32s(r, cap)?,
            perm22: read_u32s(r, cap)?,
            perm1: read_u32s(r, cap)?,
            nnz_orig: read_u64(r)? as usize,
        };

        let mut m = DaspMatrix {
            rows,
            cols,
            nnz,
            long,
            medium,
            short,
            params: DaspParams {
                max_len,
                threshold,
                short_piecing,
                reorder: flags & FLAG_REORDER != 0,
            },
            plan: None,
        };
        m.validate().map_err(SerError::Invalid)?;
        if has_plan_trailer {
            let mut has_plan = [0u8; 1];
            r.read_exact(&mut has_plan)?;
            match has_plan[0] {
                0 => {}
                1 => {
                    let plan = DaspPlan::read_from(r)?;
                    m.attach_plan(plan)
                        .map_err(|e| SerError::Malformed(e.to_string()))?;
                }
                b => {
                    return Err(SerError::Malformed(format!("bad plan marker {b}")));
                }
            }
        }
        Ok(m)
    }
}

impl DaspPlan {
    /// Writes the plan as a standalone `DASPPLN1` container (the same
    /// bytes [`DaspMatrix::write_to`] appends when a plan is attached), so
    /// a pattern analysis can be shipped ahead of any values.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(PLAN_MAGIC)?;
        write_u64(w, self.rows as u64)?;
        write_u64(w, self.cols as u64)?;
        write_u64(w, self.nnz as u64)?;
        write_u64(w, self.params.max_len as u64)?;
        write_u64(w, self.params.threshold.to_bits())?;
        write_u64(w, self.params.short_piecing as u64)?;
        write_u64(w, param_flags(&self.params))?; // flags (was reserved)

        write_u32s(w, &self.long_rows)?;
        write_usizes(w, &self.long_group_ptr)?;
        write_u32s(w, &self.long_cids)?;
        write_u64(w, self.long_nnz as u64)?;

        write_u32s(w, &self.med_rows)?;
        write_usizes(w, &self.med_rowblock_ptr)?;
        write_u32s(w, &self.med_reg_cid)?;
        write_u32s(w, &self.med_irreg_cid)?;
        write_usizes(w, &self.med_irreg_ptr)?;
        write_u64(w, self.med_nnz as u64)?;

        write_u32s(w, &self.short_cids)?;
        write_u64(w, self.n13_warps as u64)?;
        write_u64(w, self.n4_warps as u64)?;
        write_u64(w, self.n22_warps as u64)?;
        write_u64(w, self.n1 as u64)?;
        write_u64(w, self.off4 as u64)?;
        write_u64(w, self.off22 as u64)?;
        write_u64(w, self.off1 as u64)?;
        write_u32s(w, &self.perm13)?;
        write_u32s(w, &self.perm4)?;
        write_u32s(w, &self.perm22)?;
        write_u32s(w, &self.perm1)?;
        write_u64(w, self.short_nnz as u64)?;

        write_u32s(w, &self.gather)?;
        Ok(())
    }

    /// Reads a `DASPPLN1` container, validating the plan's structure
    /// (pointer monotonicity, offset arithmetic, bijective gather map)
    /// before returning.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Arc<Self>, SerError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != PLAN_MAGIC {
            return Err(SerError::Malformed("bad plan magic".into()));
        }
        let rows = read_u64(r)? as usize;
        let cols = read_u64(r)? as usize;
        let nnz = read_u64(r)? as usize;
        if rows > u32::MAX as usize || cols > u32::MAX as usize || nnz > 1 << 48 {
            return Err(SerError::Malformed(format!(
                "implausible plan header: rows {rows}, cols {cols}, nnz {nnz}"
            )));
        }
        let max_len = read_u64(r)? as usize;
        let threshold = f64::from_bits(read_u64(r)?);
        let short_piecing = read_u64(r)? != 0;
        let flags = read_u64(r)?;
        // Same 64x fill bound as the matrix container.
        let cap = (nnz as u64 + rows as u64 + 1024) * 64;

        let plan = DaspPlan {
            rows,
            cols,
            nnz,
            params: DaspParams {
                max_len,
                threshold,
                short_piecing,
                reorder: flags & FLAG_REORDER != 0,
            },
            long_rows: read_u32s(r, cap)?,
            long_group_ptr: read_usizes(r, cap)?,
            long_cids: read_u32s(r, cap)?,
            long_nnz: read_u64(r)? as usize,
            med_rows: read_u32s(r, cap)?,
            med_rowblock_ptr: read_usizes(r, cap)?,
            med_reg_cid: read_u32s(r, cap)?,
            med_irreg_cid: read_u32s(r, cap)?,
            med_irreg_ptr: read_usizes(r, cap)?,
            med_nnz: read_u64(r)? as usize,
            short_cids: read_u32s(r, cap)?,
            n13_warps: read_u64(r)? as usize,
            n4_warps: read_u64(r)? as usize,
            n22_warps: read_u64(r)? as usize,
            n1: read_u64(r)? as usize,
            off4: read_u64(r)? as usize,
            off22: read_u64(r)? as usize,
            off1: read_u64(r)? as usize,
            perm13: read_u32s(r, cap)?,
            perm4: read_u32s(r, cap)?,
            perm22: read_u32s(r, cap)?,
            perm1: read_u32s(r, cap)?,
            short_nnz: read_u64(r)? as usize,
            gather: read_u32s(r, cap)?,
        };
        plan.validate().map_err(SerError::Malformed)?;
        Ok(Arc::new(plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_fp16::F16;
    use dasp_simt::NoProbe;
    use dasp_sparse::Csr;

    fn sample() -> Csr<f64> {
        dasp_matgen::circuit_like(3000, 3, 700, 11)
    }

    #[test]
    fn round_trips_fp64() {
        let d = DaspMatrix::from_csr(&sample());
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        let back: DaspMatrix<f64> = DaspMatrix::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(d, back);
        // And it still computes.
        let x = dasp_matgen::dense_vector(d.cols, 1);
        assert_eq!(d.spmv(&x, &mut NoProbe), back.spmv(&x, &mut NoProbe));
    }

    #[test]
    fn round_trips_fp16_and_fp32() {
        let csr = sample();
        let h16: Csr<F16> = csr.cast();
        let d = DaspMatrix::from_csr(&h16);
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        let back: DaspMatrix<F16> = DaspMatrix::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(d, back);

        let h32: Csr<f32> = csr.cast();
        let d = DaspMatrix::from_csr(&h32);
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        let back: DaspMatrix<f32> = DaspMatrix::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn round_trips_heavily_padded_parameterizations() {
        // max_len = 5 classifies 6-nonzero rows as long: ~10.7x zero fill.
        // The read-side sanity cap must accept everything write_to emits.
        let csr = dasp_matgen::uniform_random(2000, 2000, 6, 12);
        let d = DaspMatrix::with_params(
            &csr,
            crate::consts::DaspParams {
                max_len: 5,
                threshold: 0.1,
                short_piecing: false,
                ..crate::consts::DaspParams::default()
            },
        );
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        let back: DaspMatrix<f64> = DaspMatrix::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn empty_rowblock_ptr_is_rejected_not_a_panic() {
        // A container whose medium rowblock_ptr has length 0 must come back
        // as an error (validate would otherwise index [0]).
        let d = DaspMatrix::from_csr(&sample());
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        // Locate the rowblock_ptr length prefix: it follows the header,
        // long arrays, and the medium reg arrays. Rather than computing
        // offsets, rebuild with an empty medium part and corrupt nnz
        // bookkeeping is caught too — here we synthesize directly:
        let mut m = d.clone();
        m.medium.rowblock_ptr.clear();
        assert!(m.validate().is_err(), "empty rowblock_ptr must be an error");
    }

    #[test]
    fn implausible_header_is_rejected() {
        let d = DaspMatrix::from_csr(&sample());
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        // rows field sits right after magic (8) + width (1).
        buf[9..17].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let err = DaspMatrix::<f64>::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, SerError::Malformed(_)), "{err}");
    }

    #[test]
    fn wrong_scalar_width_is_rejected() {
        let d = DaspMatrix::from_csr(&sample());
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        let err = DaspMatrix::<F16>::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(
            err,
            SerError::WrongScalar {
                found: 8,
                expected: 2
            }
        ));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOTDASP0rest".to_vec();
        let err = DaspMatrix::<f64>::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, SerError::Malformed(_)));
    }

    #[test]
    fn truncation_is_rejected() {
        let d = DaspMatrix::from_csr(&sample());
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        for cut in [9usize, 60, buf.len() / 2, buf.len() - 3] {
            let err = DaspMatrix::<f64>::read_from(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, SerError::Io(_) | SerError::Malformed(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn corruption_fails_validation() {
        let d = DaspMatrix::from_csr(&sample());
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        // Flip a byte inside the short-part offsets region (near the end).
        let idx = buf.len() - 200;
        buf[idx] ^= 0xff;
        let res = DaspMatrix::<f64>::read_from(&mut buf.as_slice());
        assert!(res.is_err(), "corrupted container must not decode cleanly");
    }

    #[test]
    fn matrix_with_plan_round_trips_and_refreshes() {
        let csr = sample();
        let plan = DaspPlan::analyze(&csr, DaspParams::default());
        let d = plan.fill(&csr);
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        let mut back: DaspMatrix<f64> = DaspMatrix::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(d, back);
        let got = back.plan().expect("plan travels with the matrix");
        assert_eq!(**got, *plan);
        // The reloaded plan still powers an O(nnz) refresh.
        let doubled: Vec<f64> = csr.vals.iter().map(|v| v * 2.0).collect();
        back.update_values(&doubled).expect("refresh after reload");
        let mut csr2 = csr.clone();
        csr2.vals = doubled;
        assert_eq!(back, DaspMatrix::from_csr(&csr2));
    }

    #[test]
    fn plan_round_trips_standalone() {
        let csr = sample();
        let plan = DaspPlan::analyze(&csr, DaspParams::default());
        let mut buf = Vec::new();
        plan.write_to(&mut buf).unwrap();
        let back = DaspPlan::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(*back, *plan);
        // A shipped-ahead plan fills once the values arrive.
        assert_eq!(back.fill(&csr), DaspMatrix::from_csr(&csr));
    }

    #[test]
    fn v1_containers_without_plan_trailer_still_read() {
        let d = DaspMatrix::from_csr(&sample());
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        // Rewrite as a v1 container: old magic, no plan marker byte.
        buf[..8].copy_from_slice(b"DASPFMT1");
        assert_eq!(buf.pop(), Some(0), "plan marker is the final byte");
        let back: DaspMatrix<f64> = DaspMatrix::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(d, back);
        assert!(back.plan().is_none());
    }

    #[test]
    fn corrupted_plan_trailer_is_rejected() {
        let csr = sample();
        let d = DaspPlan::analyze(&csr, DaspParams::default()).fill(&csr);
        let mut matrix_only = Vec::new();
        DaspMatrix {
            plan: None,
            ..d.clone()
        }
        .write_to(&mut matrix_only)
        .unwrap();
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        // The last 4 bytes are the final gather entry; pointing it past
        // the element range must trip the plan's gather validation.
        let len = buf.len();
        assert!(
            len - 4 > matrix_only.len(),
            "corruption lands in the trailer"
        );
        let saved: Vec<u8> = buf[len - 4..].to_vec();
        buf[len - 4..].copy_from_slice(&(d.nnz as u32).to_le_bytes());
        assert!(DaspMatrix::<f64>::read_from(&mut buf.as_slice()).is_err());
        buf[len - 4..].copy_from_slice(&saved);
        // Corrupting the plan magic (right after the marker byte) is
        // rejected...
        let end = matrix_only.len();
        buf[end] ^= 0xff;
        assert!(matches!(
            DaspMatrix::<f64>::read_from(&mut buf.as_slice()).unwrap_err(),
            SerError::Malformed(_)
        ));
        // ...and so is a bogus plan marker byte.
        buf[end] ^= 0xff;
        buf[end - 1] = 7;
        assert!(matches!(
            DaspMatrix::<f64>::read_from(&mut buf.as_slice()).unwrap_err(),
            SerError::Malformed(_)
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let d = DaspMatrix::from_csr(&sample());
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        // Overwrite the first array length (right after the 65-byte header)
        // with an absurd value.
        let pos = 8 + 1 + 7 * 8;
        buf[pos..pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = DaspMatrix::<f64>::read_from(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, SerError::Malformed(_)), "{err}");
    }
}

//! Row-similarity signatures for the medium-part reorder pass.
//!
//! When [`DaspParams::reorder`] is on, the medium stable sort breaks
//! length ties by a minhash signature of each row's column set
//! (Acc-SpMM-style greedy bucketing): rows whose column sets overlap hash
//! to nearby signatures and land in the same 8-row block, so the block's
//! 8x4 MMA windows gather overlapping x/B cache lines. The pass is
//! *structure-neutral* by construction — [`MediumPart::build_csr`]'s
//! geometry (window regularity, padding, `fill_rate`) depends only on the
//! sorted row-*length* sequence, which a tie-break cannot change — and
//! *value-neutral*: each row's own FMA chain is untouched, so `y` stays
//! bit-identical and only the x-locality of the traffic model moves.
//!
//! Determinism matters more than hash quality here: the signature is a
//! fixed-seed splitmix64 minhash, so the same pattern always produces the
//! same plan (the plan cache and `DASPPLN` containers rely on it).
//!
//! [`DaspParams::reorder`]: crate::consts::DaspParams::reorder
//! [`MediumPart::build_csr`]: crate::format::MediumPart

/// Number of independent minhash functions folded into the signature.
/// Four 16-bit lanes: the leading lane does the coarse bucketing, the
/// rest refine ordering inside a bucket.
const HASHES: usize = 4;

/// Fixed seeds for the minhash lanes (odd splitmix64 stream offsets).
const SEEDS: [u64; HASHES] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0x2545_f491_4f6c_dd1d,
];

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Minhash signature of a row's column set: for each of the [`HASHES`]
/// seeded hash functions, the minimum hash over the columns, folded to 16
/// bits and packed most-significant-lane-first. Sorting equal-length rows
/// by this key places rows sharing their minimum-hashed column (a Jaccard
/// similarity proxy) adjacently.
pub(crate) fn signature(cols: &[u32]) -> u64 {
    let mut sig = 0u64;
    for (i, seed) in SEEDS.iter().enumerate() {
        let mut min = u64::MAX;
        for &c in cols {
            let h = mix((c as u64).wrapping_add(*seed));
            if h < min {
                min = h;
            }
        }
        // Fold to 16 bits (top bits of a mixed hash are uniform).
        sig |= (min >> 48) << (16 * (HASHES - 1 - i));
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_is_deterministic_and_order_independent() {
        let a = signature(&[3, 17, 99, 250]);
        let b = signature(&[250, 99, 17, 3]);
        assert_eq!(a, b, "set signature ignores column order");
        assert_eq!(a, signature(&[3, 17, 99, 250]), "fixed seeds, fixed sig");
    }

    #[test]
    fn identical_sets_share_signatures_disjoint_sets_rarely_do() {
        let base: Vec<u32> = (0..20).map(|i| i * 7 + 3).collect();
        assert_eq!(signature(&base), signature(&base));
        // A heavily overlapping set usually keeps the leading lane; a
        // disjoint set differs with overwhelming probability.
        let disjoint: Vec<u32> = (0..20).map(|i| i * 13 + 100_000).collect();
        assert_ne!(signature(&base), signature(&disjoint));
    }

    #[test]
    fn empty_set_has_a_fixed_signature() {
        assert_eq!(signature(&[]), signature(&[]));
    }
}

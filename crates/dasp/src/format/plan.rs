//! Analysis/execute split of the preprocessing step (paper Fig. 13).
//!
//! [`DaspPlan::analyze`] runs the *analysis* half of `from_csr` on the
//! sparsity pattern alone: row categorization, the medium stable sort,
//! every part's block geometry, and a slot -> nnz *gather map* recording
//! where each CSR element lands in the format's four value arrays. The
//! *execute* half is then [`DaspPlan::fill`] — allocate the value arrays
//! and scatter — or, cheaper still, [`DaspMatrix::update_values`], an
//! O(nnz) scatter into an existing matrix that touches no index structures.
//! [`PlanCache`] keys plans by a hash of the pattern so repeated builds on
//! the same structure (re-factorizations, time stepping) skip analysis
//! entirely.
//!
//! The plan is derived by *position encoding*: analysis builds a synthetic
//! `Csr<f64>` whose j-th value is `j + 1` (exact in f64 up to 2^53), runs
//! the real zero-copy builder on it, and reads the resulting value arrays
//! back — a nonzero value `v` in slot `s` means CSR element `v - 1` lands
//! at `s`. Layout parity with [`DaspMatrix::from_csr`] therefore holds by
//! construction: the plan *is* the builder's output. The map is stored in
//! *gather* form (slot -> element), so deriving it, filling values, and
//! refreshing them all stream the format arrays sequentially.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dasp_fp16::Scalar;
use dasp_simt::{Executor, SharedSlice};
use dasp_sparse::Csr;
use dasp_trace::{Registry, Tracer};

use crate::consts::{DaspParams, GROUP_ELEMS, MMA_K, MMA_M};
use crate::format::build::{self, run_chunks};
use crate::format::{DaspMatrix, LongPart, MediumPart, ShortPart};

/// Scatter elements per chunk when a fill/update runs on the parallel
/// executor: one random write per element, so chunks stay large.
const MIN_CHUNK_SCATTER: usize = 8192;

/// The reusable analysis product: everything `from_csr` derives from the
/// sparsity pattern, and nothing it derives from the values.
///
/// A plan is scalar-free — the same plan fills f64, f32, and F16 matrices
/// — and immutable; it is shared behind an [`Arc`] between the matrices
/// filled from it and any [`PlanCache`] holding it.
#[derive(Debug, Clone, PartialEq)]
pub struct DaspPlan {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) nnz: usize,
    pub(crate) params: DaspParams,

    // Long part pattern.
    pub(crate) long_rows: Vec<u32>,
    pub(crate) long_group_ptr: Vec<usize>,
    pub(crate) long_cids: Vec<u32>,
    pub(crate) long_nnz: usize,

    // Medium part pattern (rows already in sorted order).
    pub(crate) med_rows: Vec<u32>,
    pub(crate) med_rowblock_ptr: Vec<usize>,
    pub(crate) med_reg_cid: Vec<u32>,
    pub(crate) med_irreg_cid: Vec<u32>,
    pub(crate) med_irreg_ptr: Vec<usize>,
    pub(crate) med_nnz: usize,

    // Short part pattern.
    pub(crate) short_cids: Vec<u32>,
    pub(crate) n13_warps: usize,
    pub(crate) n4_warps: usize,
    pub(crate) n22_warps: usize,
    pub(crate) n1: usize,
    pub(crate) off4: usize,
    pub(crate) off22: usize,
    pub(crate) off1: usize,
    pub(crate) perm13: Vec<u32>,
    pub(crate) perm4: Vec<u32>,
    pub(crate) perm22: Vec<u32>,
    pub(crate) perm1: Vec<u32>,
    pub(crate) short_nnz: usize,

    /// Global value slot `s` is filled by CSR element `gather[s]`, or is
    /// zero padding when `gather[s] == u32::MAX`; slots number the four
    /// value arrays back to back:
    /// `[long | medium reg | medium irreg | short]`. Gather form keeps
    /// every fill/refresh write sequential.
    pub(crate) gather: Vec<u32>,
}

/// The [`DaspPlan::gather`] marker for a padding slot (zero-filled, fed by
/// no CSR element).
pub const GATHER_PADDING: u32 = u32::MAX;

/// Internal alias; the public name is [`GATHER_PADDING`].
const PADDING: u32 = GATHER_PADDING;

/// A read-only borrow of every pattern array in a [`DaspPlan`].
///
/// The plan's fields are crate-private (the analysis pipeline owns their
/// invariants), but external structural analysis — the `dasp-verify`
/// crate's exhaustive validator — needs to inspect all of them. The view
/// exposes exactly the serialized `DASPPLN1` surface, nothing more.
#[derive(Debug, Clone, Copy)]
pub struct PlanView<'a> {
    /// Analyzed pattern rows.
    pub rows: usize,
    /// Analyzed pattern columns.
    pub cols: usize,
    /// Analyzed pattern nonzeros.
    pub nnz: usize,
    /// Parameters the pattern was analyzed with.
    pub params: DaspParams,
    /// Long-category original row ids.
    pub long_rows: &'a [u32],
    /// Long-category group pointer (first group of each row).
    pub long_group_ptr: &'a [usize],
    /// Long-category padded column ids.
    pub long_cids: &'a [u32],
    /// Long-category original nonzero count.
    pub long_nnz: usize,
    /// Medium-category row ids in sorted order.
    pub med_rows: &'a [u32],
    /// Medium-category row-block pointer.
    pub med_rowblock_ptr: &'a [usize],
    /// Medium-category regular-block column ids.
    pub med_reg_cid: &'a [u32],
    /// Medium-category irregular column ids.
    pub med_irreg_cid: &'a [u32],
    /// Medium-category irregular per-row pointer.
    pub med_irreg_ptr: &'a [usize],
    /// Medium-category original nonzero count.
    pub med_nnz: usize,
    /// Short-category packed column ids.
    pub short_cids: &'a [u32],
    /// Warps in the 1&3 sub-category.
    pub n13_warps: usize,
    /// Warps in the length-4 sub-category.
    pub n4_warps: usize,
    /// Warps in the 2&2 sub-category.
    pub n22_warps: usize,
    /// Leftover singleton rows.
    pub n1: usize,
    /// Element offset of the length-4 blocks.
    pub off4: usize,
    /// Element offset of the 2&2 blocks.
    pub off22: usize,
    /// Element offset of the singletons.
    pub off1: usize,
    /// 1&3 y-slot to original-row permutation.
    pub perm13: &'a [u32],
    /// Length-4 permutation.
    pub perm4: &'a [u32],
    /// 2&2 permutation.
    pub perm22: &'a [u32],
    /// Singleton permutation.
    pub perm1: &'a [u32],
    /// Short-category original nonzero count.
    pub short_nnz: usize,
    /// Slot -> CSR-element gather map ([`GATHER_PADDING`] = padding slot).
    pub gather: &'a [u32],
}

impl DaspPlan {
    /// Analyzes a pattern on the environment-selected executor.
    pub fn analyze<S: Scalar>(csr: &Csr<S>, params: DaspParams) -> Arc<Self> {
        Self::analyze_traced_with(csr, params, &Tracer::disabled(), &Executor::from_env())
    }

    /// [`DaspPlan::analyze`] with the preprocessing phases recorded as
    /// spans (`preprocess.categorize`, `preprocess.sort`,
    /// `preprocess.build.{long,medium,short}`, plus a `preprocess.plan`
    /// inversion child) under a `preprocess` root, on an explicit
    /// executor.
    pub fn analyze_traced_with<S: Scalar>(
        csr: &Csr<S>,
        params: DaspParams,
        tracer: &Tracer,
        exec: &Executor,
    ) -> Arc<Self> {
        assert!(
            params.max_len > 4,
            "MAX_LEN must exceed the short-row bound"
        );
        let root = tracer.span("preprocess");
        let nnz = csr.nnz();
        assert!(
            (nnz as u64) < (1u64 << 53),
            "position encoding requires nnz < 2^53"
        );

        // Position-encoded build: value j+1 marks CSR element j, so the
        // builder's own output tells us where every element lands. Zero
        // marks padding.
        let pos = Csr::<f64> {
            rows: csr.rows,
            cols: csr.cols,
            row_ptr: csr.row_ptr.clone(),
            col_idx: csr.col_idx.clone(),
            vals: (0..nnz).map(|j| (j + 1) as f64).collect(),
        };
        let m = build::build_under(&pos, params, &root, exec);

        let long_len = m.long.vals.len();
        let reg_len = m.medium.reg_val.len();
        let irreg_len = m.medium.irreg_val.len();
        let total = long_len + reg_len + irreg_len + m.short.vals.len();
        assert!(total <= u32::MAX as usize, "slot count exceeds u32 range");

        let mut gather = vec![PADDING; total];
        {
            let mut sp = root.child("preprocess.plan");
            sp.add_arg("slots", total);
            sp.add_arg("scatter_bytes", total * 4);
            let sg = SharedSlice::new(&mut gather);
            // Decode each array in place: position value v at slot s means
            // CSR element v - 1 fills s; zeros stay padding. Sequential
            // reads, sequential writes.
            let decode = |arr: &[f64], base: usize| {
                run_chunks(exec, arr.len(), MIN_CHUNK_SCATTER, |lo, hi| {
                    for (k, &v) in arr[lo..hi].iter().enumerate() {
                        if v != 0.0 {
                            sg.write(base + lo + k, (v as u64 - 1) as u32);
                        }
                    }
                });
            };
            decode(&m.long.vals, 0);
            decode(&m.medium.reg_val, long_len);
            decode(&m.medium.irreg_val, long_len + reg_len);
            decode(&m.short.vals, long_len + reg_len + irreg_len);
        }

        let DaspMatrix {
            long,
            medium,
            short,
            ..
        } = m;
        Arc::new(DaspPlan {
            rows: csr.rows,
            cols: csr.cols,
            nnz,
            params,
            long_rows: long.rows,
            long_group_ptr: long.group_ptr,
            long_cids: long.cids,
            long_nnz: long.nnz_orig,
            med_rows: medium.rows,
            med_rowblock_ptr: medium.rowblock_ptr,
            med_reg_cid: medium.reg_cid,
            med_irreg_cid: medium.irreg_cid,
            med_irreg_ptr: medium.irreg_ptr,
            med_nnz: medium.nnz_orig,
            short_cids: short.cids,
            n13_warps: short.n13_warps,
            n4_warps: short.n4_warps,
            n22_warps: short.n22_warps,
            n1: short.n1,
            off4: short.off4,
            off22: short.off22,
            off1: short.off1,
            perm13: short.perm13,
            perm4: short.perm4,
            perm22: short.perm22,
            perm1: short.perm1,
            short_nnz: short.nnz_orig,
            gather,
        })
    }

    /// Number of rows of the analyzed pattern.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the analyzed pattern.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros of the analyzed pattern.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Parameters the pattern was analyzed with.
    pub fn params(&self) -> DaspParams {
        self.params
    }

    /// A read-only [`PlanView`] over every pattern array, for external
    /// structural analysis (the `dasp-verify` crate).
    pub fn view(&self) -> PlanView<'_> {
        PlanView {
            rows: self.rows,
            cols: self.cols,
            nnz: self.nnz,
            params: self.params,
            long_rows: &self.long_rows,
            long_group_ptr: &self.long_group_ptr,
            long_cids: &self.long_cids,
            long_nnz: self.long_nnz,
            med_rows: &self.med_rows,
            med_rowblock_ptr: &self.med_rowblock_ptr,
            med_reg_cid: &self.med_reg_cid,
            med_irreg_cid: &self.med_irreg_cid,
            med_irreg_ptr: &self.med_irreg_ptr,
            med_nnz: self.med_nnz,
            short_cids: &self.short_cids,
            n13_warps: self.n13_warps,
            n4_warps: self.n4_warps,
            n22_warps: self.n22_warps,
            n1: self.n1,
            off4: self.off4,
            off22: self.off22,
            off1: self.off1,
            perm13: &self.perm13,
            perm4: &self.perm4,
            perm22: &self.perm22,
            perm1: &self.perm1,
            short_nnz: self.short_nnz,
            gather: &self.gather,
        }
    }

    /// Total value slots (including padding) a filled matrix holds.
    pub fn total_slots(&self) -> usize {
        self.long_cids.len()
            + self.med_reg_cid.len()
            + self.med_irreg_cid.len()
            + self.short_cids.len()
    }

    /// Bytes of the plan's arrays (pattern + scatter map).
    pub fn memory_bytes(&self) -> usize {
        (self.long_rows.len()
            + self.long_cids.len()
            + self.med_rows.len()
            + self.med_reg_cid.len()
            + self.med_irreg_cid.len()
            + self.perm13.len()
            + self.perm4.len()
            + self.perm22.len()
            + self.perm1.len()
            + self.gather.len())
            * 4
            + (self.long_group_ptr.len() + self.med_rowblock_ptr.len() + self.med_irreg_ptr.len())
                * std::mem::size_of::<usize>()
    }

    /// Executes the plan: allocates the value arrays, scatters `csr.vals`
    /// through the scatter map, and assembles the matrix around clones of
    /// the plan's pattern arrays. Runs on the environment-selected
    /// executor.
    ///
    /// Panics if `csr`'s dimensions or nonzero count disagree with the
    /// analyzed pattern (column structure is trusted — use
    /// [`PlanCache`] when patterns may vary).
    pub fn fill<S: Scalar>(self: &Arc<Self>, csr: &Csr<S>) -> DaspMatrix<S> {
        self.fill_traced_with(csr, &Tracer::disabled(), &Executor::from_env())
    }

    /// [`DaspPlan::fill`] recording a `preprocess.fill` span, on an
    /// explicit executor.
    pub fn fill_traced_with<S: Scalar>(
        self: &Arc<Self>,
        csr: &Csr<S>,
        tracer: &Tracer,
        exec: &Executor,
    ) -> DaspMatrix<S> {
        assert!(
            csr.rows == self.rows && csr.cols == self.cols && csr.nnz() == self.nnz,
            "fill pattern mismatch: plan is {}x{} with {} nnz, csr is {}x{} with {}",
            self.rows,
            self.cols,
            self.nnz,
            csr.rows,
            csr.cols,
            csr.nnz()
        );
        let mut sp = tracer.span("preprocess.fill");
        sp.add_arg("nnz", self.nnz);
        sp.add_arg(
            "scatter_bytes",
            scatter_bytes::<S>(self.gather.len(), self.nnz),
        );

        let mut long_vals = vec![S::zero(); self.long_cids.len()];
        let mut reg_val = vec![S::zero(); self.med_reg_cid.len()];
        let mut irreg_val = vec![S::zero(); self.med_irreg_cid.len()];
        let mut short_vals = vec![S::zero(); self.short_cids.len()];
        self.scatter_into(
            &csr.vals,
            &mut long_vals,
            &mut reg_val,
            &mut irreg_val,
            &mut short_vals,
            exec,
        );

        DaspMatrix {
            rows: self.rows,
            cols: self.cols,
            nnz: self.nnz,
            long: LongPart {
                vals: long_vals,
                cids: self.long_cids.clone(),
                group_ptr: self.long_group_ptr.clone(),
                rows: self.long_rows.clone(),
                nnz_orig: self.long_nnz,
            },
            medium: MediumPart {
                reg_val,
                reg_cid: self.med_reg_cid.clone(),
                rowblock_ptr: self.med_rowblock_ptr.clone(),
                irreg_val,
                irreg_cid: self.med_irreg_cid.clone(),
                irreg_ptr: self.med_irreg_ptr.clone(),
                rows: self.med_rows.clone(),
                nnz_orig: self.med_nnz,
            },
            short: ShortPart {
                vals: short_vals,
                cids: self.short_cids.clone(),
                n13_warps: self.n13_warps,
                n4_warps: self.n4_warps,
                n22_warps: self.n22_warps,
                n1: self.n1,
                off4: self.off4,
                off22: self.off22,
                off1: self.off1,
                perm13: self.perm13.clone(),
                perm4: self.perm4.clone(),
                perm22: self.perm22.clone(),
                perm1: self.perm1.clone(),
                nnz_orig: self.short_nnz,
            },
            params: self.params,
            plan: Some(self.clone()),
        }
    }

    /// Writes `src[gather[s]]` into every non-padding slot `s` of the four
    /// value arrays. Padding slots are never written, so they keep
    /// whatever the caller prefilled (zeros). Writes stream each array
    /// front to back; only the `src` reads are indexed.
    fn scatter_into<S: Scalar>(
        &self,
        src: &[S],
        long: &mut [S],
        reg: &mut [S],
        irreg: &mut [S],
        short: &mut [S],
        exec: &Executor,
    ) {
        let mut base = 0usize;
        for dst in [long, reg, irreg, short] {
            let map = &self.gather[base..base + dst.len()];
            base += dst.len();
            let sd = SharedSlice::new(dst);
            run_chunks(exec, map.len(), MIN_CHUNK_SCATTER, |lo, hi| {
                for (k, &g) in map[lo..hi].iter().enumerate() {
                    if g != PADDING {
                        sd.write(lo + k, src[g as usize]);
                    }
                }
            });
        }
    }

    /// Checks that `m`'s index structures are exactly the ones this plan
    /// would produce, so attaching the plan to `m` is sound.
    pub(crate) fn matches_matrix<S: Scalar>(&self, m: &DaspMatrix<S>) -> Result<(), String> {
        fn check(ok: bool, what: &str) -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(format!("plan does not match matrix: {what} differ"))
            }
        }
        check(
            self.rows == m.rows && self.cols == m.cols && self.nnz == m.nnz,
            "dimensions",
        )?;
        check(self.params == m.params, "params")?;
        check(
            self.long_rows == m.long.rows
                && self.long_group_ptr == m.long.group_ptr
                && self.long_cids == m.long.cids
                && self.long_nnz == m.long.nnz_orig,
            "long part patterns",
        )?;
        check(
            self.med_rows == m.medium.rows
                && self.med_rowblock_ptr == m.medium.rowblock_ptr
                && self.med_reg_cid == m.medium.reg_cid
                && self.med_irreg_cid == m.medium.irreg_cid
                && self.med_irreg_ptr == m.medium.irreg_ptr
                && self.med_nnz == m.medium.nnz_orig,
            "medium part patterns",
        )?;
        check(
            self.short_cids == m.short.cids
                && self.n13_warps == m.short.n13_warps
                && self.n4_warps == m.short.n4_warps
                && self.n22_warps == m.short.n22_warps
                && self.n1 == m.short.n1
                && self.off4 == m.short.off4
                && self.off22 == m.short.off22
                && self.off1 == m.short.off1
                && self.perm13 == m.short.perm13
                && self.perm4 == m.short.perm4
                && self.perm22 == m.short.perm22
                && self.perm1 == m.short.perm1
                && self.short_nnz == m.short.nnz_orig,
            "short part patterns",
        )
    }

    /// Structural validity: pointer monotonicity, array-length consistency,
    /// offset arithmetic, and a bijective in-bounds scatter map. Used after
    /// deserialization.
    pub(crate) fn validate(&self) -> Result<(), String> {
        fn check(ok: bool, what: &str) -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(format!("invalid plan: {what}"))
            }
        }
        let mono = |p: &[usize]| p.first() == Some(&0) && p.windows(2).all(|w| w[0] <= w[1]);

        check(mono(&self.long_group_ptr), "long group_ptr not monotonic")?;
        check(
            self.long_group_ptr.len() == self.long_rows.len() + 1,
            "long group_ptr length",
        )?;
        check(
            Some(self.long_cids.len())
                == self.long_group_ptr.last().unwrap().checked_mul(GROUP_ELEMS),
            "long cids length",
        )?;

        check(
            mono(&self.med_rowblock_ptr),
            "medium rowblock_ptr not monotonic",
        )?;
        check(mono(&self.med_irreg_ptr), "medium irreg_ptr not monotonic")?;
        let n_blocks = self.med_rows.len().div_ceil(MMA_M);
        check(
            self.med_rowblock_ptr.len() == n_blocks + 1,
            "medium rowblock_ptr length",
        )?;
        check(
            self.med_irreg_ptr.len()
                == if self.med_rows.is_empty() {
                    1
                } else {
                    self.med_rows.len() + 1
                },
            "medium irreg_ptr length",
        )?;
        check(
            self.med_reg_cid.len() == *self.med_rowblock_ptr.last().unwrap(),
            "medium reg cids length",
        )?;
        check(
            self.med_irreg_cid.len() == *self.med_irreg_ptr.last().unwrap(),
            "medium irreg cids length",
        )?;

        check(
            Some(self.perm13.len()) == self.n13_warps.checked_mul(32),
            "perm13 length",
        )?;
        check(
            Some(self.perm4.len()) == self.n4_warps.checked_mul(32),
            "perm4 length",
        )?;
        check(
            Some(self.perm22.len()) == self.n22_warps.checked_mul(32),
            "perm22 length",
        )?;
        check(self.perm1.len() == self.n1, "perm1 length")?;
        check(
            Some(self.off4) == self.n13_warps.checked_mul(2 * MMA_M * MMA_K),
            "off4 arithmetic",
        )?;
        check(
            Some(self.off22)
                == self
                    .n4_warps
                    .checked_mul(4 * MMA_M * MMA_K)
                    .and_then(|e| e.checked_add(self.off4)),
            "off22 arithmetic",
        )?;
        check(
            Some(self.off1)
                == self
                    .n22_warps
                    .checked_mul(2 * MMA_M * MMA_K)
                    .and_then(|e| e.checked_add(self.off22)),
            "off1 arithmetic",
        )?;
        check(
            Some(self.short_cids.len()) == self.off1.checked_add(self.n1),
            "short cids length",
        )?;

        check(
            self.long_nnz
                .checked_add(self.med_nnz)
                .and_then(|s| s.checked_add(self.short_nnz))
                == Some(self.nnz),
            "category nnz partition",
        )?;
        check(self.gather.len() == self.total_slots(), "gather length")?;
        // A bijection onto nnz needs at least nnz non-padding slots, so a
        // corrupt header with nnz >> gather.len() can be rejected before
        // allocating the seen-bitmap (nnz may be anything the deserializer's
        // plausibility cap allows, up to 2^48).
        check(self.nnz <= self.gather.len(), "nnz exceeds total slots")?;
        let mut seen = vec![0u64; self.nnz.div_ceil(64)];
        for &g in &self.gather {
            if g == PADDING {
                continue;
            }
            let g = g as usize;
            check(g < self.nnz, "gather element out of bounds")?;
            check(
                seen[g / 64] & (1 << (g % 64)) == 0,
                "gather element duplicated",
            )?;
            seen[g / 64] |= 1 << (g % 64);
        }
        let covered: u64 = seen.iter().map(|w| u64::from(w.count_ones())).sum();
        check(
            covered == self.nnz as u64,
            "gather does not cover every element",
        )?;
        Ok(())
    }
}

/// Bytes an O(nnz) value refresh moves: the gather map streamed once plus
/// a value read and write per element.
fn scatter_bytes<S: Scalar>(map_len: usize, nnz: usize) -> usize {
    map_len * 4 + nnz * 2 * std::mem::size_of::<S>()
}

/// Why a values-only refresh could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefreshError {
    /// The matrix was built without a plan (plain `from_csr`); rebuild it
    /// via [`DaspPlan::fill`] or attach a plan first.
    NoPlan,
    /// `new_vals` does not hold exactly one value per stored nonzero.
    WrongLength {
        /// Length supplied.
        got: usize,
        /// Length required (the matrix's nonzero count).
        want: usize,
    },
    /// The plan's pattern disagrees with the matrix it was attached to.
    Mismatch(String),
}

impl fmt::Display for RefreshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefreshError::NoPlan => write!(f, "matrix has no attached plan"),
            RefreshError::WrongLength { got, want } => {
                write!(f, "value slice has {got} entries, matrix stores {want}")
            }
            RefreshError::Mismatch(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RefreshError {}

impl<S: Scalar> DaspMatrix<S> {
    /// The plan this matrix was filled from, if any.
    pub fn plan(&self) -> Option<&Arc<DaspPlan>> {
        self.plan.as_ref()
    }

    /// Replaces the matrix's values with `new_vals` (one value per stored
    /// nonzero, in CSR element order) through the attached plan's scatter
    /// map: O(nnz), touching no index structures. The result is
    /// bit-identical to a full rebuild from a CSR with those values.
    pub fn update_values(&mut self, new_vals: &[S]) -> Result<(), RefreshError> {
        self.update_values_traced_with(new_vals, &Tracer::disabled(), &Executor::from_env())
    }

    /// [`DaspMatrix::update_values`] recording a `preprocess.update_values`
    /// span, on an explicit executor.
    pub fn update_values_traced_with(
        &mut self,
        new_vals: &[S],
        tracer: &Tracer,
        exec: &Executor,
    ) -> Result<(), RefreshError> {
        let plan = self.plan.clone().ok_or(RefreshError::NoPlan)?;
        if new_vals.len() != self.nnz {
            return Err(RefreshError::WrongLength {
                got: new_vals.len(),
                want: self.nnz,
            });
        }
        let mut sp = tracer.span("preprocess.update_values");
        sp.add_arg("nnz", self.nnz);
        sp.add_arg(
            "scatter_bytes",
            scatter_bytes::<S>(plan.gather.len(), self.nnz),
        );
        plan.scatter_into(
            new_vals,
            &mut self.long.vals,
            &mut self.medium.reg_val,
            &mut self.medium.irreg_val,
            &mut self.short.vals,
            exec,
        );
        Ok(())
    }

    /// Attaches a plan to a matrix built without one (e.g. deserialized,
    /// or from plain `from_csr`), enabling [`DaspMatrix::update_values`].
    /// The plan's pattern must match the matrix's index structures exactly.
    pub fn attach_plan(&mut self, plan: Arc<DaspPlan>) -> Result<(), RefreshError> {
        plan.matches_matrix(self).map_err(RefreshError::Mismatch)?;
        self.plan = Some(plan);
        Ok(())
    }

    /// [`DaspMatrix::from_csr`] through a [`PlanCache`]: a cache hit skips
    /// analysis and goes straight to the O(nnz) fill. The returned matrix
    /// carries the plan, so [`DaspMatrix::update_values`] works on it.
    pub fn from_csr_cached(csr: &Csr<S>, cache: &PlanCache) -> Self {
        Self::with_params_cached(csr, DaspParams::default(), cache)
    }

    /// [`DaspMatrix::from_csr_cached`] with explicit parameters.
    pub fn with_params_cached(csr: &Csr<S>, params: DaspParams, cache: &PlanCache) -> Self {
        cache.plan_for(csr, params).fill(csr)
    }
}

/// A small LRU cache of analysis plans keyed by sparsity pattern
/// (FNV-1a over `row_ptr`, `col_idx`, dimensions, and [`DaspParams`]).
///
/// Thread-safe; lookups clone an [`Arc`], so hits are cheap and the cache
/// never blocks fills.
pub struct PlanCache {
    cap: usize,
    entries: Mutex<Vec<(u64, Arc<DaspPlan>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

/// The capacity [`PlanCache::new`] and [`PlanCache::from_env`] fall back
/// to when `DASP_PLAN_CACHE_CAP` is unset or unparsable.
pub const DEFAULT_PLAN_CACHE_CAP: usize = 8;

fn parse_cache_cap(v: Option<&str>) -> usize {
    v.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&c| c > 0)
        .unwrap_or(DEFAULT_PLAN_CACHE_CAP)
}

impl PlanCache {
    /// A cache holding up to [`DEFAULT_PLAN_CACHE_CAP`] plans.
    pub fn new() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAP)
    }

    /// A cache sized by the `DASP_PLAN_CACHE_CAP` environment variable
    /// (positive integer; anything else falls back to
    /// [`DEFAULT_PLAN_CACHE_CAP`]). A resident-matrix server keeping one
    /// plan per hot matrix wants this at least as large as its working
    /// set — an undersized cache silently re-analyzes on every miss, which
    /// the [`PlanCache::evictions`] counter makes visible.
    pub fn from_env() -> Self {
        PlanCache::with_capacity(Self::env_capacity())
    }

    /// The capacity `DASP_PLAN_CACHE_CAP` currently selects (the
    /// [`PlanCache::from_env`] size), without building a cache.
    pub fn env_capacity() -> usize {
        parse_cache_cap(std::env::var("DASP_PLAN_CACHE_CAP").ok().as_deref())
    }

    /// A cache holding up to `cap` plans (least recently used evicted).
    pub fn with_capacity(cap: usize) -> Self {
        PlanCache {
            cap: cap.max(1),
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured capacity (plans retained before LRU eviction).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The plan for `csr`'s pattern under `params`, analyzing on a miss
    /// (environment-selected executor).
    pub fn plan_for<S: Scalar>(&self, csr: &Csr<S>, params: DaspParams) -> Arc<DaspPlan> {
        self.plan_for_traced_with(csr, params, &Tracer::disabled(), &Executor::from_env())
    }

    /// [`PlanCache::plan_for`] with tracing and an explicit executor for
    /// the miss path.
    pub fn plan_for_traced_with<S: Scalar>(
        &self,
        csr: &Csr<S>,
        params: DaspParams,
        tracer: &Tracer,
        exec: &Executor,
    ) -> Arc<DaspPlan> {
        let key = pattern_key(csr, params);
        {
            let mut entries = self.entries.lock().expect("plan cache lock");
            let found = entries.iter().position(|(k, p)| {
                *k == key
                    && p.rows == csr.rows
                    && p.cols == csr.cols
                    && p.nnz == csr.nnz()
                    && p.params == params
            });
            if let Some(i) = found {
                let e = entries.remove(i);
                let plan = e.1.clone();
                entries.insert(0, e);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return plan;
            }
        }
        let plan = DaspPlan::analyze_traced_with(csr, params, tracer, exec);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("plan cache lock");
        entries.insert(0, (key, plan.clone()));
        let evicted = entries.len().saturating_sub(self.cap);
        if evicted > 0 {
            entries.truncate(self.cap);
            self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        plan
    }

    /// Lookups that found a cached plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to analyze.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Plans dropped by LRU eviction — nonzero means the capacity is
    /// below the live pattern working set and misses are re-analyzing
    /// structures the cache has already paid for.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Publishes `format.plan_cache.{hits,misses,evictions}` gauges.
    pub fn export_metrics(&self, registry: &Registry) {
        registry.gauge_set("format.plan_cache.hits", self.hits() as f64);
        registry.gauge_set("format.plan_cache.misses", self.misses() as f64);
        registry.gauge_set("format.plan_cache.evictions", self.evictions() as f64);
    }
}

/// FNV-1a over the pattern, word-wise: dimensions and params first, then
/// `row_ptr` as u64 words and `col_idx` packed two to a word.
fn pattern_key<S: Scalar>(csr: &Csr<S>, params: DaspParams) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut word = |w: u64| {
        h ^= w;
        h = h.wrapping_mul(PRIME);
    };
    word(csr.rows as u64);
    word(csr.cols as u64);
    word(csr.nnz() as u64);
    word(params.max_len as u64);
    word(params.threshold.to_bits());
    word(params.short_piecing as u64);
    word(params.reorder as u64);
    for &p in &csr.row_ptr {
        word(p as u64);
    }
    let mut pairs = csr.col_idx.chunks_exact(2);
    for pair in &mut pairs {
        word((pair[0] as u64) << 32 | pair[1] as u64);
    }
    if let [last] = pairs.remainder() {
        word(*last as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_sparse::Coo;

    /// Rows in every category, with value `r*1000 + c` at `(r, c)`.
    fn mixed(seed: u64) -> Csr<f64> {
        let mut m = Coo::new(40, 400);
        let v = |r: usize, c: usize| (r * 1000 + c) as f64 + seed as f64;
        for c in 0..300 {
            m.push(0, c, v(0, c));
        }
        for c in 0..10 {
            m.push(2, c * 3, v(2, c * 3));
        }
        for r in 3..20 {
            for c in 0..6 {
                m.push(r, c * 7 + r, v(r, c * 7 + r));
            }
        }
        for r in 20..40 {
            let len = (r - 20) % 4 + 1;
            for c in 0..len {
                m.push(r, c * 11 + r, v(r, c * 11 + r));
            }
        }
        m.to_csr()
    }

    #[test]
    fn fill_matches_from_csr_bit_for_bit() {
        let csr = mixed(0);
        let plan = DaspPlan::analyze(&csr, DaspParams::default());
        plan.validate().expect("analyzed plan validates");
        let filled = plan.fill(&csr);
        let direct = DaspMatrix::from_csr(&csr);
        assert_eq!(filled, direct);
        assert!(filled.plan().is_some());
        assert!(direct.plan().is_none());
    }

    #[test]
    fn parallel_analysis_is_bit_identical() {
        let csr = mixed(0);
        let seq = DaspPlan::analyze_traced_with(
            &csr,
            DaspParams::default(),
            &Tracer::disabled(),
            &Executor::seq(),
        );
        let par = DaspPlan::analyze_traced_with(
            &csr,
            DaspParams::default(),
            &Tracer::disabled(),
            &Executor::par_with_threads(Some(4)),
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn update_values_matches_full_rebuild() {
        let base = mixed(0);
        let plan = DaspPlan::analyze(&base, DaspParams::default());
        let mut m = plan.fill(&base);
        for seed in [7u64, 13, 29] {
            let next = mixed(seed);
            m.update_values(&next.vals).expect("refresh applies");
            assert_eq!(m, DaspMatrix::from_csr(&next));
        }
    }

    #[test]
    fn update_values_error_paths() {
        let csr = mixed(0);
        let mut bare = DaspMatrix::from_csr(&csr);
        assert_eq!(bare.update_values(&csr.vals), Err(RefreshError::NoPlan));

        let plan = DaspPlan::analyze(&csr, DaspParams::default());
        let mut m = plan.fill(&csr);
        assert_eq!(
            m.update_values(&csr.vals[..3]),
            Err(RefreshError::WrongLength {
                got: 3,
                want: csr.nnz()
            })
        );

        // attach_plan enables refresh on a plain-built matrix...
        bare.attach_plan(plan.clone()).expect("pattern matches");
        bare.update_values(&csr.vals).expect("refresh now applies");
        // ...but rejects a plan for a different pattern.
        let other = DaspPlan::analyze(&mixed_wider(), DaspParams::default());
        let mut fresh = DaspMatrix::from_csr(&csr);
        assert!(matches!(
            fresh.attach_plan(other),
            Err(RefreshError::Mismatch(_))
        ));
    }

    fn mixed_wider() -> Csr<f64> {
        let mut m = Coo::new(40, 400);
        for c in 0..300 {
            m.push(0, c, 1.0);
        }
        for c in 0..12 {
            m.push(2, c * 3, 2.0);
        }
        for r in 3..20 {
            for c in 0..6 {
                m.push(r, c * 7 + r, 3.0);
            }
        }
        m.to_csr()
    }

    #[test]
    fn plan_cache_hits_and_returns_identical_matrix() {
        let csr = mixed(0);
        let cache = PlanCache::new();
        let a = DaspMatrix::from_csr_cached(&csr, &cache);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 0);
        let b = DaspMatrix::from_csr_cached(&csr, &cache);
        assert_eq!(cache.hits(), 1);
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(a.plan().unwrap(), b.plan().unwrap()));

        // A different pattern is a miss, not a false hit.
        let other = mixed_wider();
        let _ = DaspMatrix::from_csr_cached(&other, &cache);
        assert_eq!(cache.misses(), 2);

        // Different params on the same pattern are a different plan.
        let _ = DaspMatrix::with_params_cached(
            &csr,
            DaspParams {
                max_len: 64,
                ..DaspParams::default()
            },
            &cache,
        );
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let cache = PlanCache::with_capacity(1);
        let a = mixed(0);
        let b = mixed_wider();
        let _ = DaspMatrix::from_csr_cached(&a, &cache);
        assert_eq!(cache.evictions(), 0);
        let _ = DaspMatrix::from_csr_cached(&b, &cache);
        // `a` was evicted by `b`; rebuilding it is a miss again.
        let _ = DaspMatrix::from_csr_cached(&a, &cache);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn cache_exports_metrics() {
        let cache = PlanCache::with_capacity(1);
        let csr = mixed(0);
        let _ = DaspMatrix::from_csr_cached(&csr, &cache);
        let _ = DaspMatrix::from_csr_cached(&csr, &cache);
        let _ = DaspMatrix::from_csr_cached(&mixed_wider(), &cache);
        let registry = Registry::new();
        cache.export_metrics(&registry);
        assert_eq!(registry.gauge("format.plan_cache.hits"), Some(1.0));
        assert_eq!(registry.gauge("format.plan_cache.misses"), Some(2.0));
        assert_eq!(registry.gauge("format.plan_cache.evictions"), Some(1.0));
    }

    #[test]
    fn cache_capacity_parses_env_values() {
        assert_eq!(parse_cache_cap(None), DEFAULT_PLAN_CACHE_CAP);
        assert_eq!(parse_cache_cap(Some("")), DEFAULT_PLAN_CACHE_CAP);
        assert_eq!(
            parse_cache_cap(Some("not a number")),
            DEFAULT_PLAN_CACHE_CAP
        );
        assert_eq!(parse_cache_cap(Some("0")), DEFAULT_PLAN_CACHE_CAP);
        assert_eq!(parse_cache_cap(Some("17")), 17);
        assert_eq!(parse_cache_cap(Some(" 3 ")), 3);
        // from_env in an unconfigured process falls back to the default.
        if std::env::var("DASP_PLAN_CACHE_CAP").is_err() {
            assert_eq!(PlanCache::from_env().capacity(), DEFAULT_PLAN_CACHE_CAP);
        }
        assert_eq!(PlanCache::with_capacity(5).capacity(), 5);
    }

    #[test]
    fn analysis_traces_the_standard_phases_plus_plan() {
        let csr = mixed(0);
        let tracer = Tracer::new();
        let _ =
            DaspPlan::analyze_traced_with(&csr, DaspParams::default(), &tracer, &Executor::seq());
        let trace = tracer.take_trace();
        for name in [
            "preprocess",
            "preprocess.categorize",
            "preprocess.sort",
            "preprocess.build.long",
            "preprocess.build.medium",
            "preprocess.build.short",
            "preprocess.plan",
        ] {
            assert_eq!(
                trace.spans.iter().filter(|s| s.name == name).count(),
                1,
                "span {name}"
            );
        }
    }

    #[test]
    fn empty_matrix_plans_and_fills() {
        let csr = Csr::<f64>::empty(10, 10);
        let plan = DaspPlan::analyze(&csr, DaspParams::default());
        plan.validate().expect("empty plan validates");
        assert_eq!(plan.total_slots(), 0);
        let m = plan.fill(&csr);
        assert_eq!(m, DaspMatrix::from_csr(&csr));
    }
}

//! Storage of the medium-rows category (paper §3.2, red part of Fig. 5).

use dasp_fp16::Scalar;

use crate::consts::{BLOCK_ELEMS, MMA_K, MMA_M};

/// Medium rows (`4 < len <= MAX_LEN`), stable-sorted by descending length
/// and grouped [`MMA_M`] (= 8) rows to a *row-block*.
///
/// Within a row-block, consecutive 8x4 position windows are stored as
/// zero-padded *regular* blocks while the window holds more than
/// `threshold * 32` nonzeros; every element beyond the regular span is the
/// row's *irregular* remainder, stored per row.
///
/// * `reg_val` / `reg_cid` — the paper's `regVal`/`regCid`: regular blocks
///   back to back, intra-block **row-major** (element `(r, k)` of a block
///   at offset `r * MMA_K + k`).
/// * `rowblock_ptr` — the paper's `rowblockPtr`: element offset of each
///   row-block's regular part.
/// * `irreg_val` / `irreg_cid` / `irreg_ptr` — the paper's irregular
///   arrays, indexed by *sorted* medium-row position.
/// * `rows` — sorted position to original row id.
#[derive(Debug, Clone, PartialEq)]
pub struct MediumPart<S: Scalar> {
    /// Regular-block values (`nnz_reg_new` entries, multiple of 32).
    pub reg_val: Vec<S>,
    /// Regular-block column ids.
    pub reg_cid: Vec<u32>,
    /// Element offset of each row-block's regular part; length
    /// `num_rowblocks + 1`.
    pub rowblock_ptr: Vec<usize>,
    /// Irregular values (`nnz_irreg` entries, no padding).
    pub irreg_val: Vec<S>,
    /// Irregular column ids.
    pub irreg_cid: Vec<u32>,
    /// First irregular element of each sorted medium row; length
    /// `rows.len() + 1`.
    pub irreg_ptr: Vec<usize>,
    /// Sorted medium-row position to original row id.
    pub rows: Vec<u32>,
    /// Original (unpadded) nonzero count of this category.
    pub nnz_orig: usize,
}

impl<S: Scalar> MediumPart<S> {
    /// An empty part.
    pub fn empty() -> Self {
        MediumPart {
            reg_val: Vec::new(),
            reg_cid: Vec::new(),
            rowblock_ptr: vec![0],
            irreg_val: Vec::new(),
            irreg_cid: Vec::new(),
            irreg_ptr: vec![0],
            rows: Vec::new(),
            nnz_orig: 0,
        }
    }

    /// Number of 8-row row-blocks.
    pub fn num_rowblocks(&self) -> usize {
        self.rowblock_ptr.len() - 1
    }

    /// Number of regular 8x4 blocks in row-block `b`.
    pub fn reg_blocks(&self, b: usize) -> usize {
        (self.rowblock_ptr[b + 1] - self.rowblock_ptr[b]) / BLOCK_ELEMS
    }

    /// Builds the part from the sorted medium rows.
    ///
    /// `sorted_rows` holds `(original_row_id, elements)` sorted by
    /// descending element count (stable). `threshold` is the regular-block
    /// fill threshold.
    pub(crate) fn build(sorted_rows: &[(u32, Vec<(u32, S)>)], threshold: f64) -> Self {
        let mut part = MediumPart::empty();
        if sorted_rows.is_empty() {
            return part;
        }
        part.rows = sorted_rows.iter().map(|(r, _)| *r).collect();
        part.nnz_orig = sorted_rows.iter().map(|(_, e)| e.len()).sum();

        let accept = (BLOCK_ELEMS as f64) * threshold;
        let n_blocks = sorted_rows.len().div_ceil(MMA_M);
        for b in 0..n_blocks {
            let rows = &sorted_rows[b * MMA_M..((b + 1) * MMA_M).min(sorted_rows.len())];
            // Count nonzeros in each 8x4 position window; rows are sorted by
            // descending length so the counts are non-increasing in k.
            let max_len = rows.iter().map(|(_, e)| e.len()).max().unwrap_or(0);
            let mut reg_windows = 0usize;
            for k in 0..max_len.div_ceil(MMA_K) {
                let count: usize = rows
                    .iter()
                    .map(|(_, e)| e.len().saturating_sub(k * MMA_K).min(MMA_K))
                    .sum();
                if (count as f64) > accept {
                    reg_windows = k + 1;
                } else {
                    break;
                }
            }
            // Emit the regular blocks, intra-block row-major with zero fill.
            for k in 0..reg_windows {
                for r in 0..MMA_M {
                    for kk in 0..MMA_K {
                        let pos = k * MMA_K + kk;
                        match rows.get(r).and_then(|(_, e)| e.get(pos)) {
                            Some(&(c, v)) => {
                                part.reg_cid.push(c);
                                part.reg_val.push(v);
                            }
                            None => {
                                part.reg_cid.push(0);
                                part.reg_val.push(S::zero());
                            }
                        }
                    }
                }
            }
            let start = *part.rowblock_ptr.last().unwrap();
            part.rowblock_ptr.push(start + reg_windows * BLOCK_ELEMS);

            // Everything past the regular span is irregular, per row.
            for (_, elems) in rows {
                let from = (reg_windows * MMA_K).min(elems.len());
                for &(c, v) in &elems[from..] {
                    part.irreg_cid.push(c);
                    part.irreg_val.push(v);
                }
                let s = *part.irreg_ptr.last().unwrap();
                part.irreg_ptr.push(s + elems.len() - from);
            }
        }
        part
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: u32, len: usize) -> (u32, Vec<(u32, f64)>) {
        (id, (0..len as u32).map(|c| (c, (c + 1) as f64)).collect())
    }

    #[test]
    fn full_rowblock_is_all_regular() {
        // 8 rows of length 8: both windows 100% full.
        let rows: Vec<_> = (0..8).map(|i| row(i, 8)).collect();
        let p = MediumPart::build(&rows, 0.75);
        assert_eq!(p.num_rowblocks(), 1);
        assert_eq!(p.reg_blocks(0), 2);
        assert_eq!(p.reg_val.len(), 64);
        assert!(p.irreg_val.is_empty());
        assert_eq!(p.irreg_ptr, vec![0; 9]);
        assert_eq!(p.nnz_orig, 64);
    }

    #[test]
    fn tail_window_below_threshold_goes_irregular() {
        // 8 rows: lengths 8,8,8,8,5,5,5,5. Window 0 (positions 0..4): 32/32
        // full -> regular. Window 1 (positions 4..8): 4*4 + 4*1 = 20 < 24
        // -> irregular remainder.
        let mut rows: Vec<_> = (0..4).map(|i| row(i, 8)).collect();
        rows.extend((4..8).map(|i| row(i, 5)));
        let p = MediumPart::build(&rows, 0.75);
        assert_eq!(p.reg_blocks(0), 1);
        assert_eq!(p.reg_val.len(), 32);
        // irregular: rows 0-3 keep 4 elements each, rows 4-7 keep 1 each
        assert_eq!(p.irreg_val.len(), 4 * 4 + 4);
        assert_eq!(p.irreg_ptr, vec![0, 4, 8, 12, 16, 17, 18, 19, 20]);
    }

    #[test]
    fn exactly_at_threshold_is_not_regular() {
        // Window with exactly 24 of 32 filled: the paper says "exceeds", so
        // 24 == 0.75 * 32 must NOT become a regular block.
        let rows: Vec<_> = (0..8).map(|i| row(i, 3)).collect();
        let p = MediumPart::build(&rows, 0.75);
        assert_eq!(p.reg_blocks(0), 0);
        assert_eq!(p.irreg_val.len(), 24);
    }

    #[test]
    fn above_threshold_is_regular() {
        // 25 of 32 filled: one row of 4, seven of 3.
        let mut rows = vec![row(0, 4)];
        rows.extend((1..8).map(|i| row(i, 3)));
        let p = MediumPart::build(&rows, 0.75);
        assert_eq!(p.reg_blocks(0), 1);
        assert_eq!(p.irreg_val.len(), 0);
        // Padding slots carry zero value and cid 0.
        assert_eq!(p.reg_val.len(), 32);
        let zeros = p.reg_val.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 7);
    }

    #[test]
    fn partial_last_rowblock_pads_missing_rows() {
        // 10 rows of length 5: two row-blocks, the second with 2 real rows.
        let rows: Vec<_> = (0..10).map(|i| row(i, 5)).collect();
        let p = MediumPart::build(&rows, 0.75);
        assert_eq!(p.num_rowblocks(), 2);
        // First row-block: window 0 full (32) regular; window 1: 8 < 24.
        assert_eq!(p.reg_blocks(0), 1);
        // Second row-block: window 0 has 2*4=8 of 32 -> irregular entirely.
        assert_eq!(p.reg_blocks(1), 0);
        assert_eq!(p.irreg_ptr.len(), 11);
        // Sorted-position row 8 and 9 have all 5 elements irregular.
        assert_eq!(p.irreg_ptr[9] - p.irreg_ptr[8], 5);
    }

    #[test]
    fn intra_block_layout_is_row_major() {
        let rows: Vec<_> = (0..8).map(|i| row(i, 4)).collect();
        let p = MediumPart::build(&rows, 0.75);
        // Element (r=2, k=3) of block 0 must be row 2's element at position 3.
        assert_eq!(p.reg_val[2 * MMA_K + 3], 4.0);
        assert_eq!(p.reg_cid[2 * MMA_K + 3], 3);
    }

    #[test]
    fn empty_input_gives_empty_part() {
        let p = MediumPart::<f64>::build(&[], 0.75);
        assert_eq!(p.num_rowblocks(), 0);
        assert_eq!(p.rows.len(), 0);
    }
}

//! Storage of the medium-rows category (paper §3.2, red part of Fig. 5).

use dasp_fp16::Scalar;
use dasp_simt::{Executor, SharedSlice};
use dasp_sparse::Csr;

use crate::consts::{BLOCK_ELEMS, MMA_K, MMA_M};
use crate::format::build::run_chunks;

/// Medium rows (`4 < len <= MAX_LEN`), stable-sorted by descending length
/// and grouped [`MMA_M`] (= 8) rows to a *row-block*.
///
/// Within a row-block, consecutive 8x4 position windows are stored as
/// zero-padded *regular* blocks while the window holds more than
/// `threshold * 32` nonzeros; every element beyond the regular span is the
/// row's *irregular* remainder, stored per row.
///
/// * `reg_val` / `reg_cid` — the paper's `regVal`/`regCid`: regular blocks
///   back to back, intra-block **row-major** (element `(r, k)` of a block
///   at offset `r * MMA_K + k`).
/// * `rowblock_ptr` — the paper's `rowblockPtr`: element offset of each
///   row-block's regular part.
/// * `irreg_val` / `irreg_cid` / `irreg_ptr` — the paper's irregular
///   arrays, indexed by *sorted* medium-row position.
/// * `rows` — sorted position to original row id.
#[derive(Debug, Clone, PartialEq)]
pub struct MediumPart<S: Scalar> {
    /// Regular-block values (`nnz_reg_new` entries, multiple of 32).
    pub reg_val: Vec<S>,
    /// Regular-block column ids.
    pub reg_cid: Vec<u32>,
    /// Element offset of each row-block's regular part; length
    /// `num_rowblocks + 1`.
    pub rowblock_ptr: Vec<usize>,
    /// Irregular values (`nnz_irreg` entries, no padding).
    pub irreg_val: Vec<S>,
    /// Irregular column ids.
    pub irreg_cid: Vec<u32>,
    /// First irregular element of each sorted medium row; length
    /// `rows.len() + 1`.
    pub irreg_ptr: Vec<usize>,
    /// Sorted medium-row position to original row id.
    pub rows: Vec<u32>,
    /// Original (unpadded) nonzero count of this category.
    pub nnz_orig: usize,
}

/// Row-blocks per chunk when the emit phase runs on the parallel executor
/// (a row-block holds 8 rows of at least 5 elements).
const MIN_CHUNK_BLOCKS: usize = 16;

impl<S: Scalar> MediumPart<S> {
    /// An empty part.
    pub fn empty() -> Self {
        MediumPart {
            reg_val: Vec::new(),
            reg_cid: Vec::new(),
            rowblock_ptr: vec![0],
            irreg_val: Vec::new(),
            irreg_cid: Vec::new(),
            irreg_ptr: vec![0],
            rows: Vec::new(),
            nnz_orig: 0,
        }
    }

    /// Number of 8-row row-blocks.
    pub fn num_rowblocks(&self) -> usize {
        self.rowblock_ptr.len() - 1
    }

    /// Number of regular 8x4 blocks in row-block `b`.
    pub fn reg_blocks(&self, b: usize) -> usize {
        (self.rowblock_ptr[b + 1] - self.rowblock_ptr[b]) / BLOCK_ELEMS
    }

    /// Builds the part from the sorted medium rows' ids.
    ///
    /// `sorted` holds original row ids sorted by descending row length
    /// (stable); `threshold` is the regular-block fill threshold. A
    /// sequential counting pass over the row lengths fixes each
    /// row-block's regular window count (and with it every element's
    /// destination), then row-block chunks fan out over `exec` and copy
    /// elements straight from the CSR arrays — no per-row staging, and
    /// bit-identical output for any executor.
    pub(crate) fn build_csr(csr: &Csr<S>, sorted: &[u32], threshold: f64, exec: &Executor) -> Self {
        if sorted.is_empty() {
            return MediumPart::empty();
        }
        let accept = (BLOCK_ELEMS as f64) * threshold;
        let n_blocks = sorted.len().div_ceil(MMA_M);

        // Geometry pass: regular window counts per row-block, then the two
        // prefix-sum pointer arrays. Reads only row lengths.
        let mut rowblock_ptr = Vec::with_capacity(n_blocks + 1);
        rowblock_ptr.push(0usize);
        let mut irreg_ptr = Vec::with_capacity(sorted.len() + 1);
        irreg_ptr.push(0usize);
        let mut nnz_orig = 0usize;
        for b in 0..n_blocks {
            let ids = &sorted[b * MMA_M..((b + 1) * MMA_M).min(sorted.len())];
            // Count nonzeros in each 8x4 position window; rows are sorted by
            // descending length so the counts are non-increasing in k.
            let max_len = ids
                .iter()
                .map(|&id| csr.row_len(id as usize))
                .max()
                .unwrap_or(0);
            let mut reg_windows = 0usize;
            for k in 0..max_len.div_ceil(MMA_K) {
                let count: usize = ids
                    .iter()
                    .map(|&id| {
                        csr.row_len(id as usize)
                            .saturating_sub(k * MMA_K)
                            .min(MMA_K)
                    })
                    .sum();
                if (count as f64) > accept {
                    reg_windows = k + 1;
                } else {
                    break;
                }
            }
            let start = *rowblock_ptr.last().unwrap();
            rowblock_ptr.push(start + reg_windows * BLOCK_ELEMS);
            for &id in ids {
                let len = csr.row_len(id as usize);
                nnz_orig += len;
                let s = *irreg_ptr.last().unwrap();
                irreg_ptr.push(s + len.saturating_sub(reg_windows * MMA_K));
            }
        }

        // Emit pass: copy each row's regular span and irregular remainder
        // into the precomputed (disjoint per row-block) destinations.
        // Regular padding slots keep their prefilled (0, zero).
        let mut reg_val = vec![S::zero(); *rowblock_ptr.last().unwrap()];
        let mut reg_cid = vec![0u32; reg_val.len()];
        let mut irreg_val = vec![S::zero(); *irreg_ptr.last().unwrap()];
        let mut irreg_cid = vec![0u32; irreg_val.len()];
        {
            let srv = SharedSlice::new(&mut reg_val);
            let src = SharedSlice::new(&mut reg_cid);
            let siv = SharedSlice::new(&mut irreg_val);
            let sic = SharedSlice::new(&mut irreg_cid);
            run_chunks(exec, n_blocks, MIN_CHUNK_BLOCKS, |lo, hi| {
                for b in lo..hi {
                    let base = rowblock_ptr[b];
                    let reg_span = (rowblock_ptr[b + 1] - base) / BLOCK_ELEMS * MMA_K;
                    let ids = &sorted[b * MMA_M..((b + 1) * MMA_M).min(sorted.len())];
                    for (r, &id) in ids.iter().enumerate() {
                        let id = id as usize;
                        let start = csr.row_ptr[id];
                        let len = csr.row_ptr[id + 1] - start;
                        let reg_take = reg_span.min(len);
                        for pos in 0..reg_take {
                            let slot = base + (pos / MMA_K) * BLOCK_ELEMS + r * MMA_K + pos % MMA_K;
                            src.write(slot, csr.col_idx[start + pos]);
                            srv.write(slot, csr.vals[start + pos]);
                        }
                        let ibase = irreg_ptr[b * MMA_M + r];
                        for (t, pos) in (reg_take..len).enumerate() {
                            sic.write(ibase + t, csr.col_idx[start + pos]);
                            siv.write(ibase + t, csr.vals[start + pos]);
                        }
                    }
                }
            });
        }
        MediumPart {
            reg_val,
            reg_cid,
            rowblock_ptr,
            irreg_val,
            irreg_cid,
            irreg_ptr,
            rows: sorted.to_vec(),
            nnz_orig,
        }
    }

    /// The append-based reference builder the original build path used;
    /// kept for parity tests against [`MediumPart::build_csr`].
    ///
    /// `sorted_rows` holds `(original_row_id, elements)` sorted by
    /// descending element count (stable).
    #[cfg(test)]
    pub(crate) fn build(sorted_rows: &[(u32, Vec<(u32, S)>)], threshold: f64) -> Self {
        let mut part = MediumPart::empty();
        if sorted_rows.is_empty() {
            return part;
        }
        part.rows = sorted_rows.iter().map(|(r, _)| *r).collect();
        part.nnz_orig = sorted_rows.iter().map(|(_, e)| e.len()).sum();

        let accept = (BLOCK_ELEMS as f64) * threshold;
        let n_blocks = sorted_rows.len().div_ceil(MMA_M);
        for b in 0..n_blocks {
            let rows = &sorted_rows[b * MMA_M..((b + 1) * MMA_M).min(sorted_rows.len())];
            let max_len = rows.iter().map(|(_, e)| e.len()).max().unwrap_or(0);
            let mut reg_windows = 0usize;
            for k in 0..max_len.div_ceil(MMA_K) {
                let count: usize = rows
                    .iter()
                    .map(|(_, e)| e.len().saturating_sub(k * MMA_K).min(MMA_K))
                    .sum();
                if (count as f64) > accept {
                    reg_windows = k + 1;
                } else {
                    break;
                }
            }
            for k in 0..reg_windows {
                for r in 0..MMA_M {
                    for kk in 0..MMA_K {
                        let pos = k * MMA_K + kk;
                        match rows.get(r).and_then(|(_, e)| e.get(pos)) {
                            Some(&(c, v)) => {
                                part.reg_cid.push(c);
                                part.reg_val.push(v);
                            }
                            None => {
                                part.reg_cid.push(0);
                                part.reg_val.push(S::zero());
                            }
                        }
                    }
                }
            }
            let start = *part.rowblock_ptr.last().unwrap();
            part.rowblock_ptr.push(start + reg_windows * BLOCK_ELEMS);

            for (_, elems) in rows {
                let from = (reg_windows * MMA_K).min(elems.len());
                for &(c, v) in &elems[from..] {
                    part.irreg_cid.push(c);
                    part.irreg_val.push(v);
                }
                let s = *part.irreg_ptr.last().unwrap();
                part.irreg_ptr.push(s + elems.len() - from);
            }
        }
        part
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_sparse::Coo;

    /// A matrix whose row `i` holds `lens[i]` elements `(c, c + 1)`; built
    /// so that passing ids in index order preserves each test's intended
    /// (already descending) sorted order.
    fn csr_of(lens: &[usize]) -> Csr<f64> {
        let cols = lens.iter().copied().max().unwrap_or(1).max(1);
        let mut coo = Coo::new(lens.len().max(1), cols);
        for (i, &len) in lens.iter().enumerate() {
            for c in 0..len {
                coo.push(i, c, (c + 1) as f64);
            }
        }
        coo.to_csr()
    }

    fn build(lens: &[usize], threshold: f64) -> MediumPart<f64> {
        let ids: Vec<u32> = (0..lens.len() as u32).collect();
        MediumPart::build_csr(&csr_of(lens), &ids, threshold, &Executor::seq())
    }

    #[test]
    fn full_rowblock_is_all_regular() {
        // 8 rows of length 8: both windows 100% full.
        let p = build(&[8; 8], 0.75);
        assert_eq!(p.num_rowblocks(), 1);
        assert_eq!(p.reg_blocks(0), 2);
        assert_eq!(p.reg_val.len(), 64);
        assert!(p.irreg_val.is_empty());
        assert_eq!(p.irreg_ptr, vec![0; 9]);
        assert_eq!(p.nnz_orig, 64);
    }

    #[test]
    fn tail_window_below_threshold_goes_irregular() {
        // 8 rows: lengths 8,8,8,8,5,5,5,5. Window 0 (positions 0..4): 32/32
        // full -> regular. Window 1 (positions 4..8): 4*4 + 4*1 = 20 < 24
        // -> irregular remainder.
        let p = build(&[8, 8, 8, 8, 5, 5, 5, 5], 0.75);
        assert_eq!(p.reg_blocks(0), 1);
        assert_eq!(p.reg_val.len(), 32);
        // irregular: rows 0-3 keep 4 elements each, rows 4-7 keep 1 each
        assert_eq!(p.irreg_val.len(), 4 * 4 + 4);
        assert_eq!(p.irreg_ptr, vec![0, 4, 8, 12, 16, 17, 18, 19, 20]);
    }

    #[test]
    fn exactly_at_threshold_is_not_regular() {
        // Window with exactly 24 of 32 filled: the paper says "exceeds", so
        // 24 == 0.75 * 32 must NOT become a regular block.
        let p = build(&[3; 8], 0.75);
        assert_eq!(p.reg_blocks(0), 0);
        assert_eq!(p.irreg_val.len(), 24);
    }

    #[test]
    fn above_threshold_is_regular() {
        // 25 of 32 filled: one row of 4, seven of 3.
        let p = build(&[4, 3, 3, 3, 3, 3, 3, 3], 0.75);
        assert_eq!(p.reg_blocks(0), 1);
        assert_eq!(p.irreg_val.len(), 0);
        // Padding slots carry zero value and cid 0.
        assert_eq!(p.reg_val.len(), 32);
        let zeros = p.reg_val.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 7);
    }

    #[test]
    fn partial_last_rowblock_pads_missing_rows() {
        // 10 rows of length 5: two row-blocks, the second with 2 real rows.
        let p = build(&[5; 10], 0.75);
        assert_eq!(p.num_rowblocks(), 2);
        // First row-block: window 0 full (32) regular; window 1: 8 < 24.
        assert_eq!(p.reg_blocks(0), 1);
        // Second row-block: window 0 has 2*4=8 of 32 -> irregular entirely.
        assert_eq!(p.reg_blocks(1), 0);
        assert_eq!(p.irreg_ptr.len(), 11);
        // Sorted-position row 8 and 9 have all 5 elements irregular.
        assert_eq!(p.irreg_ptr[9] - p.irreg_ptr[8], 5);
    }

    #[test]
    fn intra_block_layout_is_row_major() {
        let p = build(&[4; 8], 0.75);
        // Element (r=2, k=3) of block 0 must be row 2's element at position 3.
        assert_eq!(p.reg_val[2 * MMA_K + 3], 4.0);
        assert_eq!(p.reg_cid[2 * MMA_K + 3], 3);
    }

    #[test]
    fn empty_input_gives_empty_part() {
        let p = MediumPart::<f64>::build_csr(&csr_of(&[]), &[], 0.75, &Executor::seq());
        assert_eq!(p.num_rowblocks(), 0);
        assert_eq!(p.rows.len(), 0);
    }

    #[test]
    fn matches_append_based_reference_and_parallel_run() {
        // Mixed lengths in descending order, enough rows for several
        // row-blocks with distinct regular spans.
        let lens: Vec<usize> = (0..100).map(|i| 256 - (i * 5) % 200).collect();
        let mut sorted_lens = lens.clone();
        sorted_lens.sort_by_key(|&l| std::cmp::Reverse(l));
        let csr = csr_of(&lens);
        let mut ids: Vec<u32> = (0..lens.len() as u32).collect();
        ids.sort_by_key(|&id| std::cmp::Reverse(lens[id as usize]));

        let new = MediumPart::build_csr(&csr, &ids, 0.75, &Executor::seq());
        let par = MediumPart::build_csr(&csr, &ids, 0.75, &Executor::par_with_threads(Some(4)));
        let staged: Vec<(u32, Vec<(u32, f64)>)> = ids
            .iter()
            .map(|&id| (id, csr.row(id as usize).collect()))
            .collect();
        let reference = MediumPart::build(&staged, 0.75);
        assert_eq!(new, reference);
        assert_eq!(new, par);
    }
}

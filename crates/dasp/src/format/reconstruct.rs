//! Reconstruction of the original CSR matrix from the DASP format.
//!
//! The blocked format must preserve the matrix exactly — every nonzero in
//! exactly one category slot, zero padding inert. `DaspMatrix::to_csr`
//! makes that invariant testable (and gives downstream users a way back
//! out of the format).
//!
//! One caveat is inherited from the format itself: padding slots carry
//! column id 0 and value 0, so a *stored explicit zero* at column 0 is
//! indistinguishable from padding and is dropped on reconstruction. The
//! paper's format has the same property; SuiteSparse matrices do not store
//! explicit zeros.

use dasp_fp16::Scalar;
use dasp_sparse::{Coo, Csr};

use crate::consts::{BLOCK_ELEMS, GROUP_ELEMS, MMA_K, MMA_M};
use crate::format::short::NO_ROW;
use crate::format::DaspMatrix;

impl<S: Scalar> DaspMatrix<S> {
    /// Rebuilds the CSR matrix from the blocked format (see module docs
    /// for the explicit-zero caveat).
    pub fn to_csr(&self) -> Csr<S> {
        let mut coo = Coo::new(self.rows, self.cols);
        let mut push = |row: u32, c: u32, v: S| {
            if v != S::zero() {
                coo.push(row as usize, c as usize, v);
            }
        };

        // Long rows: contiguous groups per row.
        for (lr, &row) in self.long.rows.iter().enumerate() {
            let lo = self.long.group_ptr[lr] * GROUP_ELEMS;
            let hi = self.long.group_ptr[lr + 1] * GROUP_ELEMS;
            for e in lo..hi {
                push(row, self.long.cids[e], self.long.vals[e]);
            }
        }

        // Medium regular blocks: intra-block row-major; block element
        // (r, k) of window w belongs to sorted row `rowblock*8 + r`.
        for b in 0..self.medium.num_rowblocks() {
            let base = self.medium.rowblock_ptr[b];
            for w in 0..self.medium.reg_blocks(b) {
                for r in 0..MMA_M {
                    let sorted = b * MMA_M + r;
                    if sorted >= self.medium.rows.len() {
                        continue;
                    }
                    let row = self.medium.rows[sorted];
                    for k in 0..MMA_K {
                        let e = base + w * BLOCK_ELEMS + r * MMA_K + k;
                        push(row, self.medium.reg_cid[e], self.medium.reg_val[e]);
                    }
                }
            }
        }
        // Medium irregular remainders, per sorted row.
        for (sorted, &row) in self.medium.rows.iter().enumerate() {
            for e in self.medium.irreg_ptr[sorted]..self.medium.irreg_ptr[sorted + 1] {
                push(row, self.medium.irreg_cid[e], self.medium.irreg_val[e]);
            }
        }

        // Short rows: walk each sub-category's packed slots through the
        // same slot -> (warp, iteration, lane) order the kernels use.
        let s = &self.short;
        // 1&3: packed row `slot` holds [one | three x3].
        for w in 0..s.n13_warps {
            for slot in 0..2 * MMA_M {
                let (b, r) = ((w * 2 * MMA_M + slot) / MMA_M, slot % MMA_M);
                let base = b * BLOCK_ELEMS + r * MMA_K;
                let i0 = (b % 2) * 2;
                let one_row = s.perm13[w * 32 + i0 * MMA_M + r];
                let three_row = s.perm13[w * 32 + (i0 + 1) * MMA_M + r];
                if one_row != NO_ROW {
                    push(one_row, s.cids[base], s.vals[base]);
                }
                if three_row != NO_ROW {
                    for k in 1..4 {
                        push(three_row, s.cids[base + k], s.vals[base + k]);
                    }
                }
            }
        }
        // Length-4 rows.
        for w in 0..s.n4_warps {
            for slot in 0..4 * MMA_M {
                let (b, r) = ((w * 4 + slot / MMA_M), slot % MMA_M);
                let base = s.off4 + b * BLOCK_ELEMS + r * MMA_K;
                let i = b % 4;
                let row = s.perm4[w * 32 + i * MMA_M + r];
                if row != NO_ROW {
                    for k in 0..4 {
                        push(row, s.cids[base + k], s.vals[base + k]);
                    }
                }
            }
        }
        // 2&2 pairs.
        for w in 0..s.n22_warps {
            for slot in 0..2 * MMA_M {
                let (b, r) = ((w * 2 * MMA_M + slot) / MMA_M, slot % MMA_M);
                let base = s.off22 + b * BLOCK_ELEMS + r * MMA_K;
                let i0 = (b % 2) * 2;
                let a_row = s.perm22[w * 32 + i0 * MMA_M + r];
                let b_row = s.perm22[w * 32 + (i0 + 1) * MMA_M + r];
                if a_row != NO_ROW {
                    push(a_row, s.cids[base], s.vals[base]);
                    push(a_row, s.cids[base + 1], s.vals[base + 1]);
                }
                if b_row != NO_ROW {
                    push(b_row, s.cids[base + 2], s.vals[base + 2]);
                    push(b_row, s.cids[base + 3], s.vals[base + 3]);
                }
            }
        }
        // Singletons.
        for t in 0..s.n1 {
            push(s.perm1[t], s.cids[s.off1 + t], s.vals[s.off1 + t]);
        }

        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_csr(seed: u64, rows: usize, cols: usize) -> Csr<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coo = Coo::new(rows, cols);
        for r in 0..rows {
            let len = match rng.gen_range(0..12) {
                0 => 0,
                1..=6 => rng.gen_range(1..=4usize),
                7..=10 => rng.gen_range(5..=256),
                _ => rng.gen_range(257..=600),
            }
            .min(cols);
            let mut cs: Vec<usize> = Vec::new();
            while cs.len() < len {
                // Avoid column 0: an explicit nonzero there is fine, but
                // keep the test focused on structural round-tripping.
                let c = rng.gen_range(1..cols);
                if !cs.contains(&c) {
                    cs.push(c);
                }
            }
            for c in cs {
                coo.push(r, c, rng.gen_range(0.1..1.0));
            }
        }
        coo.to_csr()
    }

    #[test]
    fn round_trips_random_mixed_matrices() {
        for seed in 0..8 {
            let csr = random_csr(seed, 300, 700);
            let d = DaspMatrix::from_csr(&csr);
            let back = d.to_csr();
            assert_eq!(csr, back, "seed {seed}");
        }
    }

    #[test]
    fn round_trips_every_generator_class() {
        let mats = [
            dasp_matgen::banded(400, 12, 9, 1),
            dasp_matgen::stencil2d(25, 25, 4, 2),
            dasp_matgen::rmat(9, 6, 3),
            dasp_matgen::circuit_like(1000, 3, 400, 4),
            dasp_matgen::rectangular_long(10, 900, 300, 5),
            dasp_matgen::block_dense(128, 4, 2, 6),
        ];
        for (i, csr) in mats.iter().enumerate() {
            let back = DaspMatrix::from_csr(csr).to_csr();
            assert_eq!(csr, &back, "generator {i}");
        }
    }

    #[test]
    fn column_zero_nonzeros_survive() {
        // Real nonzeros at column 0 must round-trip (only value-zero
        // padding is dropped).
        let mut coo = Coo::<f64>::new(3, 8);
        coo.push(0, 0, 5.0);
        coo.push(1, 0, -2.0);
        coo.push(1, 3, 1.0);
        coo.push(2, 0, 7.0);
        coo.push(2, 1, 8.0);
        coo.push(2, 5, 9.0);
        let csr = coo.to_csr();
        let back = DaspMatrix::from_csr(&csr).to_csr();
        assert_eq!(csr, back);
    }
}

//! DASP: dense MMA-unit accelerated general SpMV (Lu & Liu, SC '23).
//!
//! This crate is the paper's primary contribution, reproduced on the
//! [`dasp_simt`] software tensor-core substrate:
//!
//! * **The DASP data structure** ([`mod@format`]) — rows are grouped by length
//!   into *long* (`> MAX_LEN = 256`), *medium* (`5..=256`) and *short*
//!   (`<= 4`) categories and re-blocked into MMA-shaped 8x4 tiles:
//!   - long rows are cut into 64-element groups (`longVal`/`longCid`/
//!     `groupPtr`),
//!   - medium rows are stable-sorted by descending length, grouped 8 rows to
//!     a row-block, and split into a zero-filled *regular* part (windows
//!     over 75% full, `regVal`/`regCid`/`rowblockPtr`) and a per-row
//!     *irregular* remainder (`irregVal`/`irregCid`/`irregPtr`),
//!   - short rows are pieced together (1&3, 2&2, pure 4s, leftover 1s) into
//!     full 8x4 blocks (`shortVal`/`shortCid`).
//! * **The SpMV kernels** ([`kernels`]) — line-by-line translations of the
//!   paper's Algorithms 2-5, computing inner products with warp-wide
//!   `mma.m8n8k4` issues and extracting the meaningful diagonal results
//!   with the exact shuffle sequences of the paper.
//!
//! # Quickstart
//!
//! ```
//! use dasp_core::DaspMatrix;
//! use dasp_simt::NoProbe;
//! use dasp_sparse::Coo;
//!
//! // A tiny matrix: y = A x
//! let mut a = Coo::<f64>::new(3, 3);
//! a.push(0, 0, 2.0);
//! a.push(1, 1, 3.0);
//! a.push(2, 0, 1.0);
//! a.push(2, 2, 4.0);
//! let csr = a.to_csr();
//!
//! let dasp = DaspMatrix::from_csr(&csr);
//! let x = vec![1.0, 2.0, 3.0];
//! let y = dasp.spmv(&x, &mut NoProbe);
//! assert_eq!(y, vec![2.0, 6.0, 13.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consts;
pub mod format;
pub mod kernels;
pub mod spmm;
mod spmv;

pub use consts::DaspParams;
pub use format::{
    CategoryStats, DaspMatrix, DaspPlan, PlanCache, PlanView, RefreshError, DEFAULT_PLAN_CACHE_CAP,
};

//! The leftover length-1 rows kernel (paper Algorithm 5).
//!
//! The singletons that remain after 1&3 piecing are computed on the basic
//! CUDA cores: one thread per row, a single multiply, no MMA involvement.

use dasp_fp16::Scalar;
use dasp_simt::{space, Executor, Probe, ShardableProbe, SharedSlice};

use crate::format::ShortPart;

/// Number of warps the singleton kernel launches for `part` (one thread
/// per leftover row, grouped into warps of 32).
pub fn short1_warps<S: Scalar>(part: &ShortPart<S>) -> usize {
    part.n1.div_ceil(dasp_simt::WARP_SIZE)
}

/// Runs the scalar singleton kernel under the given executor, scattering
/// results into `y`.
pub fn spmv_short1_with<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    x: &[S],
    y: &mut [S],
    probe: &mut P,
    exec: &Executor,
) {
    let shared = SharedSlice::new(y);
    exec.run(short1_warps(part), probe, |w, p| {
        short1_warp(part, x, &shared, w, p)
    });
}

/// [`spmv_short1_with`] on the sequential executor.
pub fn spmv_short1<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    x: &[S],
    y: &mut [S],
    probe: &mut P,
) {
    spmv_short1_with(part, x, y, probe, &Executor::seq());
}

/// Warp body: warp `w`'s 32 threads each compute one singleton row's
/// product.
pub fn short1_warp<S: Scalar, P: Probe>(
    part: &ShortPart<S>,
    x: &[S],
    y: &SharedSlice<S>,
    w: usize,
    probe: &mut P,
) {
    const WARP: usize = 32;
    probe.warp_begin(w);
    probe.san_region("dasp.short1");
    // The kernel's last warp runs with n1 % 32 live threads.
    let live = (w + 1) * WARP;
    if live > part.n1 {
        probe.divergence((live - part.n1) as u64);
    }
    let (lo, hi) = (w * WARP, live.min(part.n1));
    let n = hi - lo;
    // One coalesced access per array for the whole warp: the lane math
    // runs over stack arrays the compiler vectorizes, and each probe
    // boundary is crossed once instead of per thread.
    let mut xi = [0usize; WARP];
    let mut writes = [0usize; WARP];
    for (lane, t) in (lo..hi).enumerate() {
        xi[lane] = part.cids[part.off1 + t] as usize;
        writes[lane] = part.perm1[t] as usize;
    }
    probe.load_val(n as u64, S::BYTES);
    probe.load_idx(n as u64, 4);
    probe.load_x_warp(&xi[..n], S::BYTES);
    probe.fma(n as u64);
    for (lane, t) in (lo..hi).enumerate() {
        let v = S::mul_to_acc(part.vals[part.off1 + t], x[xi[lane]]);
        y.write(writes[lane], S::from_acc(v));
    }
    probe.san_write_warp(space::Y, &writes[..n]);
    probe.store_y(n as u64, S::BYTES);
    probe.warp_end(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_simt::{CountingProbe, NoProbe};
    use dasp_sparse::Coo;

    #[test]
    fn singletons_compute_products() {
        // All rows length 1 and no length-3 rows, so every row stays in the
        // scalar category.
        let n = 10;
        let mut coo = Coo::<f64>::new(n, n);
        for r in 0..n {
            coo.push(r, (r * 3) % n, (r + 1) as f64);
        }
        let csr = coo.to_csr();
        let rows: Vec<(u32, Vec<(u32, f64)>)> =
            (0..n).map(|r| (r as u32, csr.row(r).collect())).collect();
        let part = ShortPart::build(rows);
        assert_eq!(part.n1, n);
        let x: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
        let mut y = vec![0.0f64; n];
        spmv_short1(&part, &x, &mut y, &mut NoProbe);
        let want = csr.spmv_reference(&x);
        assert_eq!(y, want);
    }

    #[test]
    fn counters_reflect_one_element_per_row() {
        let mut coo = Coo::<f64>::new(5, 5);
        for r in 0..5 {
            coo.push(r, r, 2.0);
        }
        let csr = coo.to_csr();
        let rows: Vec<(u32, Vec<(u32, f64)>)> =
            (0..5).map(|r| (r as u32, csr.row(r).collect())).collect();
        let part = ShortPart::build(rows);
        let x = vec![1.0f64; 5];
        let mut y = vec![0.0f64; 5];
        let mut probe = CountingProbe::a100();
        spmv_short1(&part, &x, &mut y, &mut probe);
        let s = probe.stats();
        assert_eq!(s.fma_ops, 5);
        assert_eq!(s.mma_ops, 0);
        assert_eq!(s.bytes_val, 40);
        assert_eq!(y, vec![2.0; 5]);
    }
}

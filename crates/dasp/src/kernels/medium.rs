//! The medium-rows kernel (paper Algorithm 3 and Fig. 7).
//!
//! Each warp computes `LOOP_NUM` row-blocks. Per row-block it streams the
//! regular 8x4 blocks through the MMA unit, accumulating in the fragment;
//! the eight row sums are then pulled off the accumulator diagonal with the
//! `target = ((laneid - i*8) >> 1) * 9` shuffle pair into per-lane `res`
//! registers. Finally each active lane walks its row's irregular elements
//! with scalar FMAs and writes `y`.

use dasp_fp16::Scalar;
use dasp_simt::mma::{acc_zero, mma_m8n8k4_diag, DIAG_SLOTS};
use dasp_simt::warp::WARP_SIZE;
use dasp_simt::{space, Executor, Probe, ShardableProbe, SharedSlice, XBatch};

use crate::consts::{loop_num, BLOCK_ELEMS, MMA_M};
use crate::format::MediumPart;
use crate::kernels::{extract_diagonals, gather_x, load_block};

/// Runs the medium-rows SpMV under the given executor, scattering results
/// into `y`.
pub fn spmv_medium_with<S: Scalar, P: ShardableProbe>(
    part: &MediumPart<S>,
    x: &[S],
    y: &mut [S],
    probe: &mut P,
    exec: &Executor,
) {
    let n_warps = medium_warps(part);
    let shared = SharedSlice::new(y);
    exec.run(n_warps, probe, |wid, p| {
        medium_warp(part, x, &shared, wid, p)
    });
}

/// [`spmv_medium_with`] on the sequential executor.
pub fn spmv_medium<S: Scalar, P: ShardableProbe>(
    part: &MediumPart<S>,
    x: &[S],
    y: &mut [S],
    probe: &mut P,
) {
    spmv_medium_with(part, x, y, probe, &Executor::seq());
}

/// Number of warps the medium kernel launches for `part`.
pub fn medium_warps<S: Scalar>(part: &MediumPart<S>) -> usize {
    if part.rows.is_empty() {
        return 0;
    }
    part.num_rowblocks().div_ceil(loop_num(part.rows.len()))
}

/// Warp body: warp `wid` computes `LOOP_NUM` row-blocks (regular MMA part
/// plus per-lane irregular tail) and writes its rows of `y`.
pub fn medium_warp<S: Scalar, P: Probe>(
    part: &MediumPart<S>,
    x: &[S],
    y: &SharedSlice<S>,
    wid: usize,
    probe: &mut P,
) {
    let n_rows = part.rows.len();
    let ln = loop_num(n_rows);
    let n_rowblocks = part.num_rowblocks();

    probe.warp_begin(wid);
    probe.san_region("dasp.medium");
    let mut res: [S::Acc; WARP_SIZE] = [S::acc_zero(); WARP_SIZE];

    // Regular part: LOOP_NUM row-blocks through the MMA unit.
    for i in 0..ln {
        let bid = wid * ln + i;
        if bid >= n_rowblocks {
            break;
        }
        probe.load_meta(2, 4); // rowblockPtr (int32 on device)
        let mut offset_a = part.rowblock_ptr[bid];
        let nblocks = part.reg_blocks(bid);
        let mut acc = acc_zero::<S>();
        probe.san_frag_clear();
        for _b in 0..nblocks {
            let frag_a: [S; WARP_SIZE] = load_block(&part.reg_val, offset_a);
            let cids = load_block(&part.reg_cid, offset_a);
            probe.load_val(BLOCK_ELEMS as u64, S::BYTES);
            probe.load_idx(BLOCK_ELEMS as u64, 4);
            let frag_x = gather_x(x, &cids, probe);
            mma_m8n8k4_diag::<S>(&mut acc, &frag_a, &frag_x);
            probe.mma();
            probe.san_frag_mma(DIAG_SLOTS);
            offset_a += BLOCK_ELEMS;
        }
        extract_diagonals::<S, P>(&acc, i, &mut res, probe);
    }

    // Irregular part + write-back: one lane per row (Algorithm 3,
    // lines 20-26). Lanes past the last row (or past LOOP_NUM*8 when
    // LOOP_NUM < 4) are predicated off for this whole region.
    let lane_cap = (ln * MMA_M).min(WARP_SIZE);
    let rows_here = n_rows.saturating_sub(wid * ln * MMA_M).min(lane_cap);
    if rows_here < WARP_SIZE {
        probe.divergence((WARP_SIZE - rows_here) as u64);
    }
    // Per-row counters are batched (one probe call per row, not per
    // element) and x accesses stream through an XBatch whose flush
    // boundaries are observationally equivalent to per-element calls.
    let mut xb = XBatch::new(S::BYTES);
    let mut writes = [0usize; WARP_SIZE];
    let mut n_writes = 0;
    for lane in 0..(ln * MMA_M).min(WARP_SIZE) {
        let cur_row = wid * ln * MMA_M + lane;
        if cur_row >= n_rows {
            continue;
        }
        probe.load_meta(2, 4); // irregPtr (int32 on device)
        let mut v = res[lane];
        let (jlo, jhi) = (part.irreg_ptr[cur_row], part.irreg_ptr[cur_row + 1]);
        for j in jlo..jhi {
            v = S::acc_mul_add(v, part.irreg_val[j], x[part.irreg_cid[j] as usize]);
            xb.push(probe, part.irreg_cid[j] as usize);
        }
        let elems = (jhi - jlo) as u64;
        probe.load_val(elems, S::BYTES);
        probe.load_idx(elems, 4);
        probe.fma(elems);
        y.write(part.rows[cur_row] as usize, S::from_acc(v));
        writes[n_writes] = part.rows[cur_row] as usize;
        n_writes += 1;
        probe.store_y(1, S::BYTES);
    }
    xb.flush(probe);
    probe.san_write_warp(space::Y, &writes[..n_writes]);
    probe.warp_end(wid);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_simt::{CountingProbe, NoProbe};
    use dasp_sparse::{Coo, Csr};

    fn build_medium(csr: &Csr<f64>) -> MediumPart<f64> {
        let mut rows: Vec<(u32, Vec<(u32, f64)>)> = (0..csr.rows)
            .filter(|&r| csr.row_len(r) > 0)
            .map(|r| (r as u32, csr.row(r).collect()))
            .collect();
        rows.sort_by_key(|(_, e)| std::cmp::Reverse(e.len()));
        MediumPart::build(&rows, 0.75)
    }

    fn check(lens: &[usize], cols: usize) {
        let mut coo = Coo::<f64>::new(lens.len(), cols);
        for (r, &len) in lens.iter().enumerate() {
            for k in 0..len {
                let c = (k * 5 + r * 11) % cols;
                coo.push(r, c, ((r + 2) * (k + 1)) as f64 * 0.01);
            }
        }
        let csr = coo.to_csr();
        let part = build_medium(&csr);
        let x: Vec<f64> = (0..cols).map(|i| 1.0 - (i % 7) as f64 * 0.2).collect();
        let mut y = vec![0.0f64; csr.rows];
        spmv_medium(&part, &x, &mut y, &mut NoProbe);
        let want = csr.spmv_reference(&x);
        for r in 0..csr.rows {
            assert!(
                (y[r] - want[r]).abs() <= 1e-9 * want[r].abs().max(1.0),
                "row {r}: got {} want {}",
                y[r],
                want[r]
            );
        }
    }

    #[test]
    fn one_full_rowblock() {
        check(&[8; 8], 64);
    }

    #[test]
    fn regular_and_irregular_mix() {
        check(&[8, 8, 8, 8, 5, 5, 5, 5], 64);
    }

    #[test]
    fn all_irregular_below_threshold() {
        // Rows of 5 nonzeros in a sparse-threshold configuration: window 1
        // has 8 of 32, irregular.
        check(&[5; 8], 64);
    }

    #[test]
    fn partial_last_rowblock() {
        check(&[10, 9, 8, 7, 6, 6, 6, 5, 5, 5], 64);
    }

    #[test]
    fn many_rowblocks_unequal_lengths() {
        let lens: Vec<usize> = (0..100).map(|i| 5 + (i * 13) % 250).collect();
        check(&lens, 500);
    }

    #[test]
    fn loop_num_paths_execute() {
        // Force LOOP_NUM > 1 by exceeding the row threshold is impractical
        // in a unit test (59990 rows); instead verify the helper wiring
        // against a matrix whose rowblocks exceed one warp.
        let lens: Vec<usize> = (0..64).map(|i| 5 + i % 30).collect();
        check(&lens, 128);
    }

    #[test]
    fn counters_track_regular_blocks() {
        // 8 rows of 8: two full regular blocks, no irregular.
        let mut coo = Coo::<f64>::new(8, 64);
        for r in 0..8 {
            for k in 0..8 {
                coo.push(r, k * 8 + r, 1.0);
            }
        }
        let csr = coo.to_csr();
        let part = build_medium(&csr);
        let x = vec![1.0f64; 64];
        let mut y = vec![0.0f64; 8];
        let mut probe = CountingProbe::a100();
        spmv_medium(&part, &x, &mut y, &mut probe);
        let s = probe.stats();
        assert_eq!(s.mma_ops, 2);
        assert_eq!(s.fma_ops, 0);
        assert_eq!(s.bytes_val, 64 * 8);
        assert_eq!(s.launches, 0); // launch accounting lives in spmv()
        assert!(y.iter().all(|&v| v == 8.0));
    }

    #[test]
    fn empty_part_is_a_no_op() {
        let part = MediumPart::<f64>::empty();
        let mut probe = CountingProbe::a100();
        let mut y = vec![0.0f64; 2];
        spmv_medium(&part, &[1.0], &mut y, &mut probe);
        assert_eq!(probe.stats().launches, 0);
    }
}

//! The 2&2-pieced short-rows kernel (paper §3.3.3).
//!
//! Identical structure to the 1&3 kernel, but each packed row holds two
//! length-2 rows: the even MMA pass loads `x` for columns 0..1 (the first
//! row of the pair) and the odd pass for columns 2..3 (the second row).

use dasp_fp16::Scalar;
use dasp_simt::mma::{acc_zero, mma_m8n8k4_diag, DIAG_SLOTS};
use dasp_simt::warp::{per_lane, WARP_SIZE};
use dasp_simt::{Executor, Probe, ShardableProbe, SharedSlice};

use crate::consts::BLOCK_ELEMS;
use crate::format::ShortPart;
use crate::kernels::{extract_diagonals, load_block, write_permuted};

/// Runs the 2&2 short-rows SpMV under the given executor, scattering
/// results into `y`.
pub fn spmv_short22_with<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    x: &[S],
    y: &mut [S],
    probe: &mut P,
    exec: &Executor,
) {
    let shared = SharedSlice::new(y);
    exec.run(part.n22_warps, probe, |w, p| {
        short22_warp(part, x, &shared, w, p)
    });
}

/// [`spmv_short22_with`] on the sequential executor.
pub fn spmv_short22<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    x: &[S],
    y: &mut [S],
    probe: &mut P,
) {
    spmv_short22_with(part, x, y, probe, &Executor::seq());
}

/// Warp body: warp `w` computes two 8x4 blocks of 2&2-pieced rows and
/// writes its 32 permuted `y` slots.
pub fn short22_warp<S: Scalar, P: Probe>(
    part: &ShortPart<S>,
    x: &[S],
    y: &SharedSlice<S>,
    w: usize,
    probe: &mut P,
) {
    probe.warp_begin(w);
    probe.san_region("dasp.short22");
    let warp_base = part.off22 + w * 2 * BLOCK_ELEMS;
    let mut res: [S::Acc; WARP_SIZE] = [S::acc_zero(); WARP_SIZE];
    let mut frag_a: [S; WARP_SIZE] = [S::zero(); WARP_SIZE];
    let mut offset = warp_base;

    for i in 0..4usize {
        let mut acc = acc_zero::<S>();
        probe.san_frag_clear();
        let cids = load_block(&part.cids, offset);
        let even = i & 1 == 0;
        if even {
            frag_a = load_block(&part.vals, offset);
            probe.load_val(BLOCK_ELEMS as u64, S::BYTES);
            probe.load_idx(BLOCK_ELEMS as u64, 4);
        }
        // Even pass: columns 0..1 (first length-2 row of each pair);
        // odd pass: columns 2..3. One batched x access per block, active
        // lanes in lane order.
        let mut xi = [0usize; WARP_SIZE];
        let mut nx = 0;
        for (l, &c) in cids.iter().enumerate() {
            if (l & 3 < 2) == even {
                xi[nx] = c as usize;
                nx += 1;
            }
        }
        probe.load_x_warp(&xi[..nx], S::BYTES);
        let frag_x: [S; WARP_SIZE] = per_lane(|l| {
            if (l & 3 < 2) == even {
                x[cids[l] as usize]
            } else {
                S::zero()
            }
        });
        if !even {
            offset += BLOCK_ELEMS;
        }
        mma_m8n8k4_diag::<S>(&mut acc, &frag_a, &frag_x);
        probe.mma();
        probe.san_frag_mma(DIAG_SLOTS);
        extract_diagonals::<S, P>(&acc, i, &mut res, probe);
    }

    // Padding slots have no output row: those lanes are predicated off
    // during write-back.
    write_permuted::<S, P>(
        &part.perm22[w * WARP_SIZE..(w + 1) * WARP_SIZE],
        &res,
        y,
        probe,
    );
    probe.warp_end(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_simt::NoProbe;
    use dasp_sparse::{Coo, Csr};

    fn build_short(csr: &Csr<f64>) -> ShortPart<f64> {
        let rows: Vec<(u32, Vec<(u32, f64)>)> = (0..csr.rows)
            .filter(|&r| csr.row_len(r) > 0)
            .map(|r| (r as u32, csr.row(r).collect()))
            .collect();
        ShortPart::build(rows)
    }

    /// All rows length 2 (an even count keeps everything in 2&2).
    fn check(n_rows: usize, cols: usize) {
        assert_eq!(n_rows % 2, 0);
        let mut coo = Coo::<f64>::new(n_rows, cols);
        for r in 0..n_rows {
            coo.push(r, (r * 3) % cols, (r + 1) as f64 * 0.1);
            coo.push(r, (r * 3 + 1) % cols, (r + 2) as f64 * 0.2);
        }
        let csr = coo.to_csr();
        let part = build_short(&csr);
        assert!(part.n22_warps > 0);
        assert_eq!(part.n4_warps, 0);
        let x: Vec<f64> = (0..cols).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
        let mut y = vec![0.0f64; csr.rows];
        spmv_short22(&part, &x, &mut y, &mut NoProbe);
        let want = csr.spmv_reference(&x);
        for r in 0..csr.rows {
            assert!(
                (y[r] - want[r]).abs() <= 1e-9 * want[r].abs().max(1.0),
                "row {r}: got {} want {}",
                y[r],
                want[r]
            );
        }
    }

    #[test]
    fn one_pair_of_twos() {
        check(2, 8);
    }

    #[test]
    fn full_warp_of_pairs() {
        check(32, 64);
    }

    #[test]
    fn several_warps_with_padding() {
        check(70, 128);
    }

    #[test]
    fn large() {
        check(500, 300);
    }
}

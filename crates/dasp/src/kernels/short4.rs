//! The length-4 short-rows kernel (paper §3.3.3).
//!
//! Each warp computes four 8x4 blocks with four MMA issues. Every block is
//! a complete load (all 32 A elements and all 32 x values), and each MMA's
//! eight diagonal results are eight finished `y` values, extracted with the
//! same shuffle pair as the other short kernels.

use dasp_fp16::Scalar;
use dasp_simt::mma::{acc_zero, mma_m8n8k4_diag, DIAG_SLOTS};
use dasp_simt::warp::WARP_SIZE;
use dasp_simt::{Executor, Probe, ShardableProbe, SharedSlice};

use crate::consts::BLOCK_ELEMS;
use crate::format::ShortPart;
use crate::kernels::{extract_diagonals, gather_x, load_block, write_permuted};

/// Runs the length-4 short-rows SpMV under the given executor, scattering
/// results into `y`.
pub fn spmv_short4_with<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    x: &[S],
    y: &mut [S],
    probe: &mut P,
    exec: &Executor,
) {
    let shared = SharedSlice::new(y);
    exec.run(part.n4_warps, probe, |w, p| {
        short4_warp(part, x, &shared, w, p)
    });
}

/// [`spmv_short4_with`] on the sequential executor.
pub fn spmv_short4<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    x: &[S],
    y: &mut [S],
    probe: &mut P,
) {
    spmv_short4_with(part, x, y, probe, &Executor::seq());
}

/// Warp body: warp `w` computes four complete 8x4 blocks and writes its 32
/// permuted `y` slots.
pub fn short4_warp<S: Scalar, P: Probe>(
    part: &ShortPart<S>,
    x: &[S],
    y: &SharedSlice<S>,
    w: usize,
    probe: &mut P,
) {
    probe.warp_begin(w);
    probe.san_region("dasp.short4");
    let mut res: [S::Acc; WARP_SIZE] = [S::acc_zero(); WARP_SIZE];
    for i in 0..4usize {
        let offset = part.off4 + (w * 4 + i) * BLOCK_ELEMS;
        let mut acc = acc_zero::<S>();
        probe.san_frag_clear();
        let frag_a: [S; WARP_SIZE] = load_block(&part.vals, offset);
        let cids = load_block(&part.cids, offset);
        probe.load_val(BLOCK_ELEMS as u64, S::BYTES);
        probe.load_idx(BLOCK_ELEMS as u64, 4);
        let frag_x = gather_x(x, &cids, probe);
        mma_m8n8k4_diag::<S>(&mut acc, &frag_a, &frag_x);
        probe.mma();
        probe.san_frag_mma(DIAG_SLOTS);
        extract_diagonals::<S, P>(&acc, i, &mut res, probe);
    }
    // Padding slots have no output row: those lanes are predicated off
    // during write-back.
    write_permuted::<S, P>(
        &part.perm4[w * WARP_SIZE..(w + 1) * WARP_SIZE],
        &res,
        y,
        probe,
    );
    probe.warp_end(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_simt::NoProbe;
    use dasp_sparse::{Coo, Csr};

    fn build_short(csr: &Csr<f64>) -> ShortPart<f64> {
        let rows: Vec<(u32, Vec<(u32, f64)>)> = (0..csr.rows)
            .filter(|&r| csr.row_len(r) > 0)
            .map(|r| (r as u32, csr.row(r).collect()))
            .collect();
        ShortPart::build(rows)
    }

    fn check(n_rows: usize, cols: usize) {
        let mut coo = Coo::<f64>::new(n_rows, cols);
        for r in 0..n_rows {
            for k in 0..4 {
                coo.push(r, (r * 7 + k * 2) % cols, ((r + 1) * (k + 1)) as f64 * 0.05);
            }
        }
        let csr = coo.to_csr();
        let part = build_short(&csr);
        assert!(part.n4_warps > 0);
        assert_eq!(part.n13_warps + part.n22_warps, 0);
        let x: Vec<f64> = (0..cols).map(|i| 0.5 + (i % 4) as f64 * 0.25).collect();
        let mut y = vec![0.0f64; csr.rows];
        spmv_short4(&part, &x, &mut y, &mut NoProbe);
        let want = csr.spmv_reference(&x);
        for r in 0..csr.rows {
            assert!(
                (y[r] - want[r]).abs() <= 1e-9 * want[r].abs().max(1.0),
                "row {r}: got {} want {}",
                y[r],
                want[r]
            );
        }
    }

    #[test]
    fn one_row() {
        check(1, 16);
    }

    #[test]
    fn exactly_one_warp() {
        check(32, 64);
    }

    #[test]
    fn padding_tail() {
        check(45, 128);
    }

    #[test]
    fn many_warps() {
        check(400, 256);
    }

    #[test]
    fn warp_bodies_in_any_order_equal_the_full_run() {
        // Executing each warp body exactly once — here in reverse order —
        // must equal the in-order run: warps own disjoint y slots.
        let mut coo = Coo::<f64>::new(100, 64);
        for r in 0..100 {
            for k in 0..4 {
                coo.push(r, (r + k * 9) % 64, (r + k + 1) as f64 * 0.1);
            }
        }
        let csr = coo.to_csr();
        let part = build_short(&csr);
        assert!(part.n4_warps >= 2);
        let x = vec![1.0f64; 64];
        let mut y_full = vec![0.0f64; 100];
        spmv_short4(&part, &x, &mut y_full, &mut NoProbe);
        let mut y_split = vec![0.0f64; 100];
        {
            let shared = SharedSlice::new(&mut y_split);
            for w in (0..part.n4_warps).rev() {
                short4_warp(&part, &x, &shared, w, &mut NoProbe);
            }
        }
        assert_eq!(y_full, y_split);
    }
}

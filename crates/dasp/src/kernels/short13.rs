//! The 1&3-pieced short-rows kernel (paper Algorithm 4 and Fig. 8).
//!
//! Each warp computes two 8x4 blocks with **four** MMA issues. A block's
//! matrix values are loaded once; the `x` values are loaded in two passes —
//! first only column 0 (the length-1 piece of every packed row), then only
//! columns 1..3 (the length-3 piece) — so each MMA's diagonal holds either
//! the singleton products or the 3-element dot products. The warp produces
//! exactly 32 `y` values.

use dasp_fp16::Scalar;
use dasp_simt::mma::{acc_zero, mma_m8n8k4_diag, DIAG_SLOTS};
use dasp_simt::warp::{per_lane, WARP_SIZE};
use dasp_simt::{Executor, Probe, ShardableProbe, SharedSlice};

use crate::consts::BLOCK_ELEMS;
use crate::format::ShortPart;
use crate::kernels::{extract_diagonals, load_block, write_permuted};

/// Runs the 1&3 short-rows SpMV under the given executor, scattering
/// results into `y`.
pub fn spmv_short13_with<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    x: &[S],
    y: &mut [S],
    probe: &mut P,
    exec: &Executor,
) {
    let shared = SharedSlice::new(y);
    exec.run(part.n13_warps, probe, |w, p| {
        short13_warp(part, x, &shared, w, p)
    });
}

/// [`spmv_short13_with`] on the sequential executor.
pub fn spmv_short13<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    x: &[S],
    y: &mut [S],
    probe: &mut P,
) {
    spmv_short13_with(part, x, y, probe, &Executor::seq());
}

/// Warp body: warp `w` computes two 8x4 blocks (four MMA passes) and
/// writes its 32 permuted `y` slots.
pub fn short13_warp<S: Scalar, P: Probe>(
    part: &ShortPart<S>,
    x: &[S],
    y: &SharedSlice<S>,
    w: usize,
    probe: &mut P,
) {
    probe.warp_begin(w);
    probe.san_region("dasp.short13");
    let warp_base = w * 2 * BLOCK_ELEMS; // two blocks per warp
    let mut res: [S::Acc; WARP_SIZE] = [S::acc_zero(); WARP_SIZE];
    let mut frag_a: [S; WARP_SIZE] = [S::zero(); WARP_SIZE];
    let mut offset = warp_base;

    for i in 0..4usize {
        let mut acc = acc_zero::<S>();
        probe.san_frag_clear();
        let cids = load_block(&part.cids, offset);
        let even = i & 1 == 0;
        if even {
            // Even pass: load A; only column 0's x values participate
            // (the length-1 piece of every packed row).
            frag_a = load_block(&part.vals, offset);
            probe.load_val(BLOCK_ELEMS as u64, S::BYTES);
            probe.load_idx(BLOCK_ELEMS as u64, 4);
        }
        // Masked coalesced x gather: the pass's active lanes in lane
        // order, one batched access for the whole block.
        let mut xi = [0usize; WARP_SIZE];
        let mut nx = 0;
        for (l, &c) in cids.iter().enumerate() {
            if (l & 3 == 0) == even {
                xi[nx] = c as usize;
                nx += 1;
            }
        }
        probe.load_x_warp(&xi[..nx], S::BYTES);
        let frag_x: [S; WARP_SIZE] = per_lane(|l| {
            if (l & 3 == 0) == even {
                x[cids[l] as usize]
            } else {
                S::zero()
            }
        });
        if !even {
            offset += BLOCK_ELEMS; // advance to the next block
        }
        mma_m8n8k4_diag::<S>(&mut acc, &frag_a, &frag_x);
        probe.mma();
        probe.san_frag_mma(DIAG_SLOTS);
        extract_diagonals::<S, P>(&acc, i, &mut res, probe);
    }

    // Padding slots have no output row: those lanes are predicated off
    // during write-back.
    write_permuted::<S, P>(
        &part.perm13[w * WARP_SIZE..(w + 1) * WARP_SIZE],
        &res,
        y,
        probe,
    );
    probe.warp_end(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_simt::{CountingProbe, NoProbe};
    use dasp_sparse::{Coo, Csr};

    fn build_short(csr: &Csr<f64>) -> ShortPart<f64> {
        let rows: Vec<(u32, Vec<(u32, f64)>)> = (0..csr.rows)
            .filter(|&r| csr.row_len(r) > 0)
            .map(|r| (r as u32, csr.row(r).collect()))
            .collect();
        ShortPart::build(rows)
    }

    /// Rows alternating length 1 and 3 so everything lands in the 1&3
    /// category.
    fn check(n_pairs: usize, cols: usize) {
        let mut coo = Coo::<f64>::new(2 * n_pairs, cols);
        for p in 0..n_pairs {
            coo.push(2 * p, (p * 3) % cols, (p + 1) as f64 * 0.5);
            for k in 0..3 {
                coo.push(
                    2 * p + 1,
                    (p * 5 + k * 2 + 1) % cols,
                    (p + k + 1) as f64 * 0.25,
                );
            }
        }
        let csr = coo.to_csr();
        let part = build_short(&csr);
        assert_eq!(part.n1, 0);
        assert_eq!(part.n4_warps, 0);
        let x: Vec<f64> = (0..cols).map(|i| 0.3 + (i % 5) as f64).collect();
        let mut y = vec![0.0f64; csr.rows];
        spmv_short13(&part, &x, &mut y, &mut NoProbe);
        let want = csr.spmv_reference(&x);
        for r in 0..csr.rows {
            assert!(
                (y[r] - want[r]).abs() <= 1e-9 * want[r].abs().max(1.0),
                "row {r}: got {} want {}",
                y[r],
                want[r]
            );
        }
    }

    #[test]
    fn one_pair() {
        check(1, 16);
    }

    #[test]
    fn exactly_one_warp_of_pairs() {
        check(16, 64);
    }

    #[test]
    fn multiple_warps_with_padding() {
        check(23, 128);
    }

    #[test]
    fn many_warps() {
        check(200, 512);
    }

    #[test]
    fn a_loaded_once_x_loaded_once_per_element() {
        let mut coo = Coo::<f64>::new(32, 64);
        for p in 0..16 {
            coo.push(2 * p, p, 1.0);
            for k in 0..3 {
                coo.push(2 * p + 1, p + k + 1, 1.0);
            }
        }
        let csr = coo.to_csr();
        let part = build_short(&csr);
        let x = vec![1.0f64; 64];
        let mut y = vec![0.0f64; 32];
        let mut probe = CountingProbe::a100();
        spmv_short13(&part, &x, &mut y, &mut probe);
        let s = probe.stats();
        // One warp, two blocks: A loaded once per block (64 elements), x
        // requested once per element slot (8 + 24 per block).
        assert_eq!(s.bytes_val, 64 * 8);
        assert_eq!(s.x_requests, 64);
        assert_eq!(s.mma_ops, 4);
        assert_eq!(s.bytes_y, 32 * 8);
    }

    #[test]
    fn empty_part_is_a_no_op() {
        let part = ShortPart::<f64>::build(Vec::new());
        let mut probe = CountingProbe::a100();
        let mut y = vec![0.0f64; 2];
        spmv_short13(&part, &[1.0], &mut y, &mut probe);
        assert_eq!(probe.stats().launches, 0);
    }
}

//! Shared pieces of the DASP kernels.

#![allow(clippy::needless_range_loop)]

use dasp_fp16::Scalar;
use dasp_simt::checked;
use dasp_simt::mma::{diag_position, AccFrag, MMA_M};
use dasp_simt::warp::{full_mask, per_lane, WARP_SIZE};
use dasp_simt::{space, Probe, SharedSlice};

use crate::format::NO_ROW;

/// Contiguous whole-block load: the paper's per-lane block index
/// `idx = (3 & laneid) + (laneid >> 2) * MMA_K` is the identity permutation
/// (`(3 & t) + (t >> 2) * 4 == t`), so lane `t`'s block element is
/// `src[offset + t]` and a coalesced 8×4 block load is one 32-element
/// slice copy the compiler vectorizes.
#[inline]
pub(crate) fn load_block<T: Copy>(src: &[T], offset: usize) -> [T; WARP_SIZE] {
    src[offset..offset + WARP_SIZE]
        .try_into()
        .expect("block slice is WARP_SIZE long")
}

/// Gathers each lane's `x[cids[lane]]` for one block, issuing a single
/// batched probe access (lane order, so cache classification is
/// bit-identical to 32 per-element `load_x` calls).
#[inline]
pub(crate) fn gather_x<S: Scalar, P: Probe>(
    x: &[S],
    cids: &[u32; WARP_SIZE],
    probe: &mut P,
) -> [S; WARP_SIZE] {
    let xi: [usize; WARP_SIZE] = per_lane(|l| cids[l] as usize);
    probe.load_x_warp(&xi, S::BYTES);
    per_lane(|l| x[xi[l]])
}

/// Permuted warp write-back shared by the short kernels: each lane whose
/// permutation slot names a real row (`!= NO_ROW`) writes its result to
/// `y[perm[lane]]`; padding lanes are predicated off and counted as one
/// divergent region. The shadow-write probe and the store-traffic bump
/// are issued once for the whole warp.
#[inline]
pub(crate) fn write_permuted<S: Scalar, P: Probe>(
    perm: &[u32],
    res: &[S::Acc; WARP_SIZE],
    y: &SharedSlice<S>,
    probe: &mut P,
) {
    let mut writes = [0usize; WARP_SIZE];
    let mut nw = 0;
    for (lane, &row) in perm.iter().enumerate() {
        if row != NO_ROW {
            y.write(row as usize, S::from_acc(res[lane]));
            writes[nw] = row as usize;
            nw += 1;
        }
    }
    probe.san_write_warp(space::Y, &writes[..nw]);
    probe.store_y(nw as u64, S::BYTES);
    let inactive = (perm.len() - nw) as u64;
    if inactive > 0 {
        probe.divergence(inactive);
    }
}

/// The diagonal extraction of Algorithms 3 and 4 (lines 13-18 / 15-20):
/// after iteration `i`'s MMA, the eight row results live on the diagonal of
/// the accumulator fragment; two variable-source shuffles with
/// `target = ((laneid - i*8) >> 1) * 9` move them to lanes `i*8..(i+1)*8`,
/// where even lanes take register 0 and odd lanes register 1.
#[inline]
pub(crate) fn extract_diagonals<S: Scalar, P: Probe>(
    acc: &AccFrag<S>,
    i: usize,
    res: &mut [S::Acc; WARP_SIZE],
    probe: &mut P,
) {
    // Initcheck: extraction consumes the eight diagonal accumulator slots.
    for r in 0..MMA_M {
        let (lane, reg) = diag_position(r);
        probe.san_frag_read(lane, reg);
    }
    let y0: [S::Acc; WARP_SIZE] = per_lane(|l| acc[l][0]);
    let y1: [S::Acc; WARP_SIZE] = per_lane(|l| acc[l][1]);
    let target: [i32; WARP_SIZE] = per_lane(|l| ((l as i32 - (i as i32) * 8) >> 1) * 9);
    let target4: [i32; WARP_SIZE] = per_lane(|l| target[l] + 4);
    // Only lanes i*8..(i+1)*8 consume their shuffled value; the negative
    // targets on lower lanes are the paper's discarded-read pattern.
    let used: u32 = 0xffu32 << (i * 8);
    let t0 = checked::shfl_sync_var(probe, full_mask(), y0, &target, used);
    let t1 = checked::shfl_sync_var(probe, full_mask(), y1, &target4, used);
    probe.shfl(2);
    for lane in 0..WARP_SIZE {
        if lane >> 3 == i {
            res[lane] = if lane & 1 == 0 { t0[lane] } else { t1[lane] };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_simt::mma::{acc_zero, diag_position};
    use dasp_simt::NoProbe;

    #[test]
    fn mma_idx_covers_one_block_row_major() {
        // The paper's per-lane block index is the identity permutation —
        // the invariant that lets [`load_block`] be a contiguous copy.
        let idx: [usize; WARP_SIZE] = per_lane(|lane| (3 & lane) + (lane >> 2) * 4);
        let mut seen = [false; 32];
        for (lane, &i) in idx.iter().enumerate() {
            assert_eq!(i, lane);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn extraction_places_rows_for_every_iteration() {
        for i in 0..4usize {
            let mut acc = acc_zero::<f64>();
            for r in 0..8 {
                let (lane, reg) = diag_position(r);
                acc[lane][reg] = (100 * i + r) as f64;
            }
            let mut res = [0.0f64; WARP_SIZE];
            extract_diagonals::<f64, _>(&acc, i, &mut res, &mut NoProbe);
            for r in 0..8 {
                assert_eq!(res[i * 8 + r], (100 * i + r) as f64, "i={i} r={r}");
            }
            // Other lanes untouched.
            for lane in 0..WARP_SIZE {
                if lane >> 3 != i {
                    assert_eq!(res[lane], 0.0);
                }
            }
        }
    }
}

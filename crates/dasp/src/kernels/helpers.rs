//! Shared pieces of the DASP kernels.

#![allow(clippy::needless_range_loop)]

use dasp_fp16::Scalar;
use dasp_simt::checked;
use dasp_simt::mma::{diag_position, AccFrag, MMA_M};
use dasp_simt::warp::{full_mask, per_lane, WARP_SIZE};
use dasp_simt::Probe;

/// The per-lane element index used by every DASP kernel to address one 8x4
/// block (paper Algorithms 2-4, `idx = (3 & laneid) + (laneid >> 2) * MMA_K`):
/// lane `t` owns block element `(row = t >> 2, k = t & 3)` of the intra-block
/// row-major layout.
#[inline]
pub(crate) fn mma_idx() -> [usize; WARP_SIZE] {
    per_lane(|lane| (3 & lane) + (lane >> 2) * 4)
}

/// Loads each lane's column id from `cids[offset + idx[lane]]`.
#[inline]
pub(crate) fn load_idx_lane(
    cids: &[u32],
    offset: usize,
    idx: &[usize; WARP_SIZE],
) -> [u32; WARP_SIZE] {
    per_lane(|lane| cids[offset + idx[lane]])
}

/// The diagonal extraction of Algorithms 3 and 4 (lines 13-18 / 15-20):
/// after iteration `i`'s MMA, the eight row results live on the diagonal of
/// the accumulator fragment; two variable-source shuffles with
/// `target = ((laneid - i*8) >> 1) * 9` move them to lanes `i*8..(i+1)*8`,
/// where even lanes take register 0 and odd lanes register 1.
#[inline]
pub(crate) fn extract_diagonals<S: Scalar, P: Probe>(
    acc: &AccFrag<S>,
    i: usize,
    res: &mut [S::Acc; WARP_SIZE],
    probe: &mut P,
) {
    // Initcheck: extraction consumes the eight diagonal accumulator slots.
    for r in 0..MMA_M {
        let (lane, reg) = diag_position(r);
        probe.san_frag_read(lane, reg);
    }
    let y0: [S::Acc; WARP_SIZE] = per_lane(|l| acc[l][0]);
    let y1: [S::Acc; WARP_SIZE] = per_lane(|l| acc[l][1]);
    let target: [i32; WARP_SIZE] = per_lane(|l| ((l as i32 - (i as i32) * 8) >> 1) * 9);
    let target4: [i32; WARP_SIZE] = per_lane(|l| target[l] + 4);
    // Only lanes i*8..(i+1)*8 consume their shuffled value; the negative
    // targets on lower lanes are the paper's discarded-read pattern.
    let used: u32 = 0xffu32 << (i * 8);
    let t0 = checked::shfl_sync_var(probe, full_mask(), y0, &target, used);
    let t1 = checked::shfl_sync_var(probe, full_mask(), y1, &target4, used);
    probe.shfl(2);
    for lane in 0..WARP_SIZE {
        if lane >> 3 == i {
            res[lane] = if lane & 1 == 0 { t0[lane] } else { t1[lane] };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_simt::mma::{acc_zero, diag_position};
    use dasp_simt::NoProbe;

    #[test]
    fn mma_idx_covers_one_block_row_major() {
        let idx = mma_idx();
        let mut seen = [false; 32];
        for (lane, &i) in idx.iter().enumerate() {
            assert_eq!(i, (lane >> 2) * 4 + (lane & 3));
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn extraction_places_rows_for_every_iteration() {
        for i in 0..4usize {
            let mut acc = acc_zero::<f64>();
            for r in 0..8 {
                let (lane, reg) = diag_position(r);
                acc[lane][reg] = (100 * i + r) as f64;
            }
            let mut res = [0.0f64; WARP_SIZE];
            extract_diagonals::<f64, _>(&acc, i, &mut res, &mut NoProbe);
            for r in 0..8 {
                assert_eq!(res[i * 8 + r], (100 * i + r) as f64, "i={i} r={r}");
            }
            // Other lanes untouched.
            for lane in 0..WARP_SIZE {
                if lane >> 3 != i {
                    assert_eq!(res[lane], 0.0);
                }
            }
        }
    }
}

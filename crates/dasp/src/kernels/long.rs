//! The long-rows kernel (paper Algorithm 2 and Fig. 6).
//!
//! Phase 1: one warp per 64-element group — two block loads, two MMA
//! issues, then the diagonal partial sums (lanes `{0,9,18,27}` register 0
//! and `{4,13,22,31}` register 1) are collapsed into lane 0 with the
//! paper's `shfl_down 9, 18` / `shfl(fragY[1], 4)` sequence and written to
//! the auxiliary `warpVal` array.
//!
//! Phase 2: one warp per long row sums its groups' `warpVal` entries with a
//! strided loop and a tree `warpReduceSum`, writing the final `y` value.

use dasp_fp16::Scalar;
use dasp_simt::mma::{acc_zero, diag_position, mma_m8n8k4_diag, DIAG_SLOTS, MMA_M};
use dasp_simt::warp::{full_mask, per_lane, WARP_SIZE};
use dasp_simt::{checked, space, Executor, Probe, ShardableProbe, SharedSlice};

use dasp_simt::WarpScratch;

use crate::consts::{BLOCK_ELEMS, GROUP_ELEMS};
use crate::format::LongPart;
use crate::kernels::{gather_x, load_block};

/// Runs the two-phase long-rows SpMV under the given executor, scattering
/// results into `y`. Phase 1's group warps all complete (and, under a
/// parallel executor, join) before phase 2 starts — the grid-wide barrier
/// between the two kernel launches on the device.
pub fn spmv_long_with<S: Scalar, P: ShardableProbe>(
    part: &LongPart<S>,
    x: &[S],
    y: &mut [S],
    probe: &mut P,
    exec: &Executor,
) {
    let n_groups = part.num_groups();
    if n_groups == 0 {
        return;
    }
    // Arena-leased per-launch scratch: capacity is recycled across
    // launches instead of allocated fresh (the lease drops at return).
    let mut warp_val = WarpScratch::lease(n_groups, S::acc_zero());
    {
        let wv = SharedSlice::new(&mut warp_val);
        exec.run(n_groups, probe, |g, p| long_phase1_warp(part, x, &wv, g, p));
    }
    let shared = SharedSlice::new(y);
    exec.run(part.rows.len(), probe, |lr, p| {
        long_phase2_warp(part, &warp_val, &shared, lr, p)
    });
}

/// [`spmv_long_with`] on the sequential executor: the deterministic
/// measurement path, also used by unit tests.
pub fn spmv_long<S: Scalar, P: ShardableProbe>(
    part: &LongPart<S>,
    x: &[S],
    y: &mut [S],
    probe: &mut P,
) {
    spmv_long_with(part, x, y, probe, &Executor::seq());
}

/// Phase-1 warp body: warp `g` computes one 64-element group's partial sum
/// into `warp_val[g]` (disjoint across warps).
pub fn long_phase1_warp<S: Scalar, P: Probe>(
    part: &LongPart<S>,
    x: &[S],
    warp_val: &SharedSlice<S::Acc>,
    g: usize,
    probe: &mut P,
) {
    let mask = full_mask();
    probe.warp_begin(g);
    probe.san_region("dasp.long.phase1");
    let mut acc = acc_zero::<S>();
    probe.san_frag_clear();
    let mut offset_a = g * GROUP_ELEMS;
    for _i in 0..2 {
        let frag_a: [S; WARP_SIZE] = load_block(&part.vals, offset_a);
        let cids = load_block(&part.cids, offset_a);
        probe.load_val(BLOCK_ELEMS as u64, S::BYTES);
        probe.load_idx(BLOCK_ELEMS as u64, 4);
        let frag_x = gather_x(x, &cids, probe);
        mma_m8n8k4_diag::<S>(&mut acc, &frag_a, &frag_x);
        probe.mma();
        probe.san_frag_mma(DIAG_SLOTS);
        offset_a += BLOCK_ELEMS;
    }
    // Lines 10-14: collapse the eight diagonal partials into lane 0.
    for r in 0..MMA_M {
        let (lane, reg) = diag_position(r);
        probe.san_frag_read(lane, reg);
    }
    let mut y0: [S::Acc; WARP_SIZE] = per_lane(|l| acc[l][0]);
    let mut y1: [S::Acc; WARP_SIZE] = per_lane(|l| acc[l][1]);
    for delta in [9usize, 18] {
        let d = checked::shfl_down_sync(probe, mask, y0, delta);
        for l in 0..WARP_SIZE {
            y0[l] = S::acc_add(y0[l], d[l]);
        }
        let d = checked::shfl_down_sync(probe, mask, y1, delta);
        for l in 0..WARP_SIZE {
            y1[l] = S::acc_add(y1[l], d[l]);
        }
    }
    let b = checked::shfl_sync(probe, mask, y1, 4);
    for l in 0..WARP_SIZE {
        y0[l] = S::acc_add(y0[l], b[l]);
    }
    probe.shfl(5);
    warp_val.write(g, y0[0]);
    probe.san_write(space::AUX, g);
    probe.store_y(1, S::ACC_BYTES);
    probe.warp_end(g);
}

/// Phase-2 warp body: warp `lr` reduces long row `lr`'s group partials
/// from `warp_val` into `y` (each warp owns one output row).
pub fn long_phase2_warp<S: Scalar, P: Probe>(
    part: &LongPart<S>,
    warp_val: &[S::Acc],
    y: &SharedSlice<S>,
    lr: usize,
    probe: &mut P,
) {
    let mask = full_mask();
    probe.warp_begin(lr);
    probe.san_region("dasp.long.phase2");
    let orig_row = part.rows[lr];
    let lo = part.group_ptr[lr];
    let hi = part.group_ptr[lr + 1];
    probe.load_meta(2, 4); // groupPtr (int32 on device)
    let row_warp_len = hi - lo;
    // The strided read-back runs with a ragged tail: lanes past
    // `row_warp_len % 32` sit idle on the last stride.
    let tail = row_warp_len % WARP_SIZE;
    if tail != 0 {
        probe.divergence((WARP_SIZE - tail) as u64);
    }
    // Stride-major sweep (iteration `s`: lanes read `lo + s*32 + lane`,
    // the coalesced order the device issues): one batched shadow probe
    // and one meta-traffic bump per 32-element stride instead of 32.
    let mut thread_val: [S::Acc; WARP_SIZE] = [S::acc_zero(); WARP_SIZE];
    let mut base = 0;
    let mut stride_idx = [0usize; WARP_SIZE];
    while base < row_warp_len {
        let n = (row_warp_len - base).min(WARP_SIZE);
        for (lane, si) in stride_idx[..n].iter_mut().enumerate() {
            *si = lo + base + lane;
        }
        for lane in 0..n {
            thread_val[lane] = S::acc_add(thread_val[lane], warp_val[stride_idx[lane]]);
        }
        probe.san_read_warp(space::AUX, &stride_idx[..n]);
        probe.load_meta(n as u64, S::ACC_BYTES); // warpVal read-back
        base += WARP_SIZE;
    }
    let reduced = checked::warp_reduce(probe, mask, thread_val, |a, b| S::acc_add(a, b));
    probe.shfl(dasp_simt::shuffle::WARP_REDUCE_SHFLS);
    y.write(orig_row as usize, S::from_acc(reduced[0]));
    probe.san_write(space::Y, orig_row as usize);
    probe.store_y(1, S::BYTES);
    probe.warp_end(lr);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_simt::{CountingProbe, NoProbe};
    use dasp_sparse::Coo;

    fn check(lens: &[usize], cols: usize) {
        let mut coo = Coo::<f64>::new(lens.len(), cols);
        for (r, &len) in lens.iter().enumerate() {
            for k in 0..len {
                let c = (k * 7 + r * 3) % cols;
                coo.push(r, c, ((r + 1) * (k + 3)) as f64 * 0.01);
            }
        }
        let csr = coo.to_csr();
        let mut part = crate::format::LongPart::empty();
        for r in 0..csr.rows {
            let elems: Vec<(u32, f64)> = csr.row(r).collect();
            if !elems.is_empty() {
                part.push_row(r as u32, &elems);
            }
        }
        let x: Vec<f64> = (0..cols).map(|i| 0.5 + (i % 13) as f64 * 0.1).collect();
        let mut y = vec![0.0f64; csr.rows];
        spmv_long(&part, &x, &mut y, &mut NoProbe);
        let want = csr.spmv_reference(&x);
        for r in 0..csr.rows {
            assert!(
                (y[r] - want[r]).abs() <= 1e-9 * want[r].abs().max(1.0),
                "row {r}: got {} want {}",
                y[r],
                want[r]
            );
        }
    }

    #[test]
    fn single_row_one_group() {
        // Exactly 64 nonzeros: one group, no padding.
        check(&[64], 128);
    }

    #[test]
    fn single_row_with_padding() {
        check(&[300], 512);
    }

    #[test]
    fn row_of_256_uses_four_warps_like_figure6() {
        check(&[256], 300);
    }

    #[test]
    fn many_rows_mixed_group_counts() {
        check(&[65, 64, 257, 1000, 100, 63], 1024);
    }

    #[test]
    fn row_longer_than_warp_groups() {
        // > 32 groups so phase 2's strided loop iterates more than once.
        check(&[64 * 40 + 17], 4096);
    }

    #[test]
    fn stats_count_launches_and_mmas() {
        let mut coo = Coo::<f64>::new(1, 128);
        for k in 0..128 {
            coo.push(0, k, 1.0);
        }
        let csr = coo.to_csr();
        let mut part = crate::format::LongPart::empty();
        part.push_row(0, &csr.row(0).collect::<Vec<_>>());
        let x = vec![1.0f64; 128];
        let mut y = vec![0.0f64; 1];
        let mut probe = CountingProbe::a100();
        spmv_long(&part, &x, &mut y, &mut probe);
        let s = probe.stats();
        assert_eq!(y[0], 128.0);
        assert_eq!(s.launches, 0); // launch accounting lives in spmv()
        assert_eq!(s.mma_ops, 4); // 128 elems = 2 groups x 2 mma
        assert_eq!(s.bytes_val, 128 * 8);
        assert_eq!(s.x_requests, 128);
    }

    #[test]
    fn empty_part_is_a_no_op() {
        let part = crate::format::LongPart::<f64>::empty();
        let mut y = vec![0.0f64; 3];
        let mut probe = CountingProbe::a100();
        spmv_long(&part, &[1.0], &mut y, &mut probe);
        assert_eq!(probe.stats().launches, 0);
        assert_eq!(y, vec![0.0; 3]);
    }
}

//! The DASP SpMV kernels (paper §3.3, Algorithms 2-5).
//!
//! Each kernel is a line-by-line translation of its pseudocode onto the
//! [`dasp_simt`] warp substrate: per-warp functions over 32-lane arrays,
//! issuing `mma.m8n8k4` and the paper's exact shuffle sequences. All kernels
//! are generic over [`dasp_fp16::Scalar`] (FP64 and FP16) and over
//! [`dasp_simt::Probe`] for traffic accounting.
//!
//! Each kernel exists exactly once, as a *warp body* (`*_warp`) plus a
//! `spmv_*_with` driver that runs the body under any
//! [`dasp_simt::Executor`] — sequential for the deterministic measurement
//! path, parallel for instrumented multi-threaded runs. The bare `spmv_*`
//! entry points are the sequential-executor conveniences used by unit
//! tests.
//!
//! Lane loops intentionally index multiple warp registers by `lane`; the
//! range-loop lint is disabled to keep the lockstep reading.
#![allow(clippy::needless_range_loop)]

mod helpers;
mod long;
mod medium;
mod short1;
mod short13;
mod short22;
mod short4;

pub use long::{long_phase1_warp, long_phase2_warp, spmv_long, spmv_long_with};
pub use medium::{medium_warp, medium_warps, spmv_medium, spmv_medium_with};
pub use short1::{short1_warp, short1_warps, spmv_short1, spmv_short1_with};
pub use short13::{short13_warp, spmv_short13, spmv_short13_with};
pub use short22::{short22_warp, spmv_short22, spmv_short22_with};
pub use short4::{short4_warp, spmv_short4, spmv_short4_with};

pub(crate) use helpers::{extract_diagonals, gather_x, load_block, write_permuted};

//! The DASP SpMV kernels (paper §3.3, Algorithms 2-5).
//!
//! Each kernel is a line-by-line translation of its pseudocode onto the
//! [`dasp_simt`] warp substrate: per-warp functions over 32-lane arrays,
//! issuing `mma.m8n8k4` and the paper's exact shuffle sequences. All kernels
//! are generic over [`dasp_fp16::Scalar`] (FP64 and FP16) and over
//! [`dasp_simt::Probe`] for traffic accounting.
//!
//! Lane loops intentionally index multiple warp registers by `lane`; the
//! range-loop lint is disabled to keep the lockstep reading.
#![allow(clippy::needless_range_loop)]

mod helpers;
mod long;
mod medium;
mod short1;
mod short13;
mod short22;
mod short4;

pub use long::{spmv_long, spmv_long_phase1_range, spmv_long_phase2_range};
pub use medium::{medium_warps, spmv_medium, spmv_medium_range};
pub use short1::{spmv_short1, spmv_short1_range};
pub use short13::{spmv_short13, spmv_short13_range};
pub use short22::{spmv_short22, spmv_short22_range};
pub use short4::{spmv_short4, spmv_short4_range};

pub(crate) use helpers::{extract_diagonals, load_idx_lane, mma_idx};

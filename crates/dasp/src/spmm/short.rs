//! Multi-RHS short-rows kernels (1&3 piecing, 2&2 piecing, pure-4s, and
//! the scalar leftover singletons).
//!
//! The piecing kernels replicate SpMV's pass structure exactly: A loads
//! once per block (per panel), and the **B side** is masked per pass —
//! the length-1 piece's `k` position first, then the complementary
//! positions — so each pass's masked products (including the `a * 0`
//! fills SpMV itself issues) reproduce the single-vector sequence per
//! column. Each pass widens to 8 masked-A MMA issues, one per
//! row-segment, sharing the pass accumulator.

use dasp_fp16::Scalar;
use dasp_simt::mma::{acc_zero, mma_m8n8k4_row_segment, row_slots, MMA_K, MMA_M};
use dasp_simt::warp::{per_lane, WARP_SIZE};
use dasp_simt::{space, Executor, Probe, ShardableProbe, SharedSlice, XBatch};
use dasp_sparse::{DenseMat, PANEL_WIDTH};

use crate::consts::BLOCK_ELEMS;
use crate::format::{ShortPart, NO_ROW};
use crate::kernels::{load_block, short1_warps};
use crate::spmm::{extract_rows, PanelRes};

/// Runs the 1&3 short-rows SpMM under the given executor.
pub fn spmm_short13_with<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
    exec: &Executor,
) {
    let panels = b.num_panels();
    exec.run(part.n13_warps * panels, probe, |wid, p| {
        pieced_warp(
            part,
            b,
            y,
            y_rows,
            part.n13_warps,
            wid,
            Piecing::OneThree,
            p,
        )
    });
}

/// Runs the 2&2 short-rows SpMM under the given executor.
pub fn spmm_short22_with<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
    exec: &Executor,
) {
    let panels = b.num_panels();
    exec.run(part.n22_warps * panels, probe, |wid, p| {
        pieced_warp(part, b, y, y_rows, part.n22_warps, wid, Piecing::TwoTwo, p)
    });
}

/// Which piecing split a pass-masked warp computes.
#[derive(Clone, Copy)]
enum Piecing {
    /// 1&3: even passes take block column 0, odd passes columns 1..3.
    OneThree,
    /// 2&2: even passes take block columns 0..1, odd passes columns 2..3.
    TwoTwo,
}

impl Piecing {
    #[inline]
    fn active(self, pass: usize, k: usize) -> bool {
        let even = pass & 1 == 0;
        match self {
            Piecing::OneThree => {
                if even {
                    k == 0
                } else {
                    k != 0
                }
            }
            Piecing::TwoTwo => {
                if even {
                    k < 2
                } else {
                    k >= 2
                }
            }
        }
    }

    #[inline]
    fn base(self, part_off22: usize, w: usize) -> usize {
        match self {
            Piecing::OneThree => w * 2 * BLOCK_ELEMS,
            Piecing::TwoTwo => part_off22 + w * 2 * BLOCK_ELEMS,
        }
    }

    #[inline]
    fn region(self) -> &'static str {
        match self {
            Piecing::OneThree => "spmm.short13",
            Piecing::TwoTwo => "spmm.short22",
        }
    }
}

/// Shared warp body of the two piecing kernels: two 8x4 blocks in four
/// pass-masked MMA sweeps, writing 32 permuted output slots per panel.
#[allow(clippy::too_many_arguments)]
fn pieced_warp<S: Scalar, P: Probe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    n_warps: usize,
    wid: usize,
    piecing: Piecing,
    probe: &mut P,
) {
    let (panel, w) = (wid / n_warps, wid % n_warps);
    probe.warp_begin(wid);
    probe.san_region(piecing.region());
    let w_p = b.panel_width(panel);
    let bp = b.panel(panel);
    let mut res: PanelRes<S> = [[S::acc_zero(); PANEL_WIDTH]; WARP_SIZE];
    let mut block_a: [S; WARP_SIZE] = [S::zero(); WARP_SIZE];
    let mut cids: [u32; WARP_SIZE] = [0; WARP_SIZE];
    let mut offset = piecing.base(part.off22, w);

    for i in 0..4usize {
        let mut acc = acc_zero::<S>();
        probe.san_frag_clear();
        if i & 1 == 0 {
            // Even pass: the block's A values and ids load once per
            // panel and stay in registers for the odd pass.
            block_a = load_block(&part.vals, offset);
            cids = load_block(&part.cids, offset);
            probe.load_val(BLOCK_ELEMS as u64, S::BYTES);
            probe.load_idx(BLOCK_ELEMS as u64, 4);
        }
        for r in 0..MMA_M {
            // B-side pass mask: only the pass's piece positions gather;
            // the rest stay zero, exactly like SpMV's masked x fragment.
            let frag_b: [S; WARP_SIZE] = per_lane(|l| {
                let k = l & 3;
                if piecing.active(i, k) {
                    bp[cids[r * MMA_K + k] as usize * PANEL_WIDTH + (l >> 2)]
                } else {
                    S::zero()
                }
            });
            // One batched B access per row-segment over the pass's
            // active k positions (k-then-jj order).
            let mut xi = [0usize; WARP_SIZE];
            let mut nx = 0;
            for k in 0..MMA_K {
                if piecing.active(i, k) {
                    let c = cids[r * MMA_K + k] as usize;
                    for jj in 0..w_p {
                        xi[nx] = b.lin_index(panel, c, jj);
                        nx += 1;
                    }
                }
            }
            probe.load_x_warp(&xi[..nx], S::BYTES);
            // Row-segment issue: A masked to row r (the mask and the other
            // rows' inert 0*b adds are skipped — see the variant's docs).
            mma_m8n8k4_row_segment::<S>(&mut acc, &block_a, &frag_b, r);
            probe.mma();
            probe.san_frag_mma(row_slots(r));
        }
        if i & 1 == 1 {
            offset += BLOCK_ELEMS;
        }
        extract_rows::<S, P>(&acc, i, &mut res, probe);
    }

    let perm = match piecing {
        Piecing::OneThree => &part.perm13,
        Piecing::TwoTwo => &part.perm22,
    };
    write_permuted(perm, w, &res, w_p, panel, y, y_rows, probe);
    probe.warp_end(wid);
}

/// Runs the length-4 short-rows SpMM under the given executor.
pub fn spmm_short4_with<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
    exec: &Executor,
) {
    let panels = b.num_panels();
    exec.run(part.n4_warps * panels, probe, |wid, p| {
        spmm_short4_warp(part, b, y, y_rows, wid, p)
    });
}

/// Warp body: warp `wid = panel * n4_warps + w` computes four complete
/// 8x4 blocks against every live column of its panel.
pub fn spmm_short4_warp<S: Scalar, P: Probe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    wid: usize,
    probe: &mut P,
) {
    let (panel, w) = (wid / part.n4_warps, wid % part.n4_warps);
    probe.warp_begin(wid);
    probe.san_region("spmm.short4");
    let w_p = b.panel_width(panel);
    let bp = b.panel(panel);
    let mut res: PanelRes<S> = [[S::acc_zero(); PANEL_WIDTH]; WARP_SIZE];
    for i in 0..4usize {
        let offset = part.off4 + (w * 4 + i) * BLOCK_ELEMS;
        let mut acc = acc_zero::<S>();
        probe.san_frag_clear();
        let block_a: [S; WARP_SIZE] = load_block(&part.vals, offset);
        let cids = load_block(&part.cids, offset);
        probe.load_val(BLOCK_ELEMS as u64, S::BYTES);
        probe.load_idx(BLOCK_ELEMS as u64, 4);
        for r in 0..MMA_M {
            let frag_b: [S; WARP_SIZE] =
                per_lane(|l| bp[cids[r * MMA_K + (l & 3)] as usize * PANEL_WIDTH + (l >> 2)]);
            // One batched B access per row-segment (k-then-jj order).
            let mut xi = [0usize; WARP_SIZE];
            let mut nx = 0;
            for k in 0..MMA_K {
                let c = cids[r * MMA_K + k] as usize;
                for jj in 0..w_p {
                    xi[nx] = b.lin_index(panel, c, jj);
                    nx += 1;
                }
            }
            probe.load_x_warp(&xi[..nx], S::BYTES);
            mma_m8n8k4_row_segment::<S>(&mut acc, &block_a, &frag_b, r);
            probe.mma();
            probe.san_frag_mma(row_slots(r));
        }
        extract_rows::<S, P>(&acc, i, &mut res, probe);
    }
    write_permuted(&part.perm4, w, &res, w_p, panel, y, y_rows, probe);
    probe.warp_end(wid);
}

/// Runs the scalar singleton SpMM under the given executor.
pub fn spmm_short1_with<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
    exec: &Executor,
) {
    let panels = b.num_panels();
    let n_warps = short1_warps(part);
    exec.run(n_warps * panels, probe, |wid, p| {
        spmm_short1_warp(part, b, y, y_rows, n_warps, wid, p)
    });
}

/// Warp body: each of the warp's 32 threads computes one singleton row's
/// products — the row's value and index load once, then one multiply per
/// live column.
pub fn spmm_short1_warp<S: Scalar, P: Probe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    n_warps: usize,
    wid: usize,
    probe: &mut P,
) {
    let (panel, w) = (wid / n_warps, wid % n_warps);
    probe.warp_begin(wid);
    probe.san_region("spmm.short1");
    let w_p = b.panel_width(panel);
    let bp = b.panel(panel);
    let live = (w + 1) * WARP_SIZE;
    if live > part.n1 {
        probe.divergence((live - part.n1) as u64);
    }
    // One warp-scoped batch for all singleton rows: B accesses stream in
    // the same t-then-jj order the per-row calls used.
    let mut xb = XBatch::new(S::BYTES);
    for t in w * WARP_SIZE..live.min(part.n1) {
        let e = part.off1 + t;
        let c = part.cids[e] as usize;
        probe.load_val(1, S::BYTES);
        probe.load_idx(1, 4);
        let row = part.perm1[t] as usize;
        let mut writes = [0usize; PANEL_WIDTH];
        for jj in 0..w_p {
            let v = S::mul_to_acc(part.vals[e], bp[c * PANEL_WIDTH + jj]);
            xb.push(probe, b.lin_index(panel, c, jj));
            y.write((panel * y_rows + row) * PANEL_WIDTH + jj, S::from_acc(v));
            writes[jj] = (panel * y_rows + row) * PANEL_WIDTH + jj;
        }
        probe.fma(w_p as u64);
        probe.san_write_warp(space::Y, &writes[..w_p]);
        probe.store_y(w_p as u64, S::BYTES);
    }
    xb.flush(probe);
    probe.warp_end(wid);
}

/// Write-back shared by the three MMA short kernels: permuted slots with
/// `NO_ROW` padding predicated off.
#[allow(clippy::too_many_arguments)]
fn write_permuted<S: Scalar, P: Probe>(
    perm: &[u32],
    w: usize,
    res: &PanelRes<S>,
    w_p: usize,
    panel: usize,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
) {
    // Shadow writes and store traffic batch once for the whole warp.
    let mut writes = [0usize; WARP_SIZE * PANEL_WIDTH];
    let mut nw = 0;
    let mut inactive = 0u64;
    for lane in 0..WARP_SIZE {
        let row = perm[w * WARP_SIZE + lane];
        if row != NO_ROW {
            for jj in 0..w_p {
                y.write(
                    (panel * y_rows + row as usize) * PANEL_WIDTH + jj,
                    S::from_acc(res[lane][jj]),
                );
                writes[nw] = (panel * y_rows + row as usize) * PANEL_WIDTH + jj;
                nw += 1;
            }
        } else {
            inactive += 1;
        }
    }
    probe.san_write_warp(space::Y, &writes[..nw]);
    probe.store_y(nw as u64, S::BYTES);
    if inactive > 0 {
        probe.divergence(inactive);
    }
}

//! Multi-RHS short-rows kernels (1&3 piecing, 2&2 piecing, pure-4s, and
//! the scalar leftover singletons).
//!
//! The piecing kernels replicate SpMV's pass structure exactly: A loads
//! once per block — held register-resident across **every RHS panel** —
//! and the B side is masked per pass (the length-1 piece's `k` position
//! first, then the complementary positions), so each pass's masked
//! products (including the `a * 0` fills SpMV itself issues) reproduce
//! the single-vector sequence per column. Each pass widens to 8 masked-A
//! MMA issues per panel, one per row-segment, sharing the pass's
//! per-panel accumulator.

use dasp_fp16::Scalar;
use dasp_simt::mma::{acc_zero, mma_m8n8k4_row_segment, row_slots, AccFrag, MMA_K, MMA_M};
use dasp_simt::warp::{per_lane, WARP_SIZE};
use dasp_simt::{space, Executor, Probe, ShardableProbe, SharedSlice, WarpScratch, XBatch};
use dasp_sparse::{DenseMat, PANEL_WIDTH};

use crate::consts::BLOCK_ELEMS;
use crate::format::{ShortPart, NO_ROW};
use crate::kernels::{load_block, short1_warps};
use crate::spmm::{extract_rows, PanelRes};

/// Runs the 1&3 short-rows SpMM under the given executor.
pub fn spmm_short13_with<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
    exec: &Executor,
) {
    exec.run(part.n13_warps, probe, |w, p| {
        pieced_warp(part, b, y, y_rows, w, Piecing::OneThree, p)
    });
}

/// Runs the 2&2 short-rows SpMM under the given executor.
pub fn spmm_short22_with<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
    exec: &Executor,
) {
    exec.run(part.n22_warps, probe, |w, p| {
        pieced_warp(part, b, y, y_rows, w, Piecing::TwoTwo, p)
    });
}

/// Which piecing split a pass-masked warp computes.
#[derive(Clone, Copy)]
enum Piecing {
    /// 1&3: even passes take block column 0, odd passes columns 1..3.
    OneThree,
    /// 2&2: even passes take block columns 0..1, odd passes columns 2..3.
    TwoTwo,
}

impl Piecing {
    #[inline]
    fn active(self, pass: usize, k: usize) -> bool {
        let even = pass & 1 == 0;
        match self {
            Piecing::OneThree => {
                if even {
                    k == 0
                } else {
                    k != 0
                }
            }
            Piecing::TwoTwo => {
                if even {
                    k < 2
                } else {
                    k >= 2
                }
            }
        }
    }

    #[inline]
    fn base(self, part_off22: usize, w: usize) -> usize {
        match self {
            Piecing::OneThree => w * 2 * BLOCK_ELEMS,
            Piecing::TwoTwo => part_off22 + w * 2 * BLOCK_ELEMS,
        }
    }

    #[inline]
    fn region(self) -> &'static str {
        match self {
            Piecing::OneThree => "spmm.short13",
            Piecing::TwoTwo => "spmm.short22",
        }
    }
}

/// Shared warp body of the two piecing kernels: two 8x4 blocks in four
/// pass-masked MMA sweeps over every RHS panel, writing 32 permuted
/// output slots per panel.
fn pieced_warp<S: Scalar, P: Probe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    w: usize,
    piecing: Piecing,
    probe: &mut P,
) {
    let panels = b.num_panels();
    probe.warp_begin(w);
    probe.san_region(piecing.region());
    let mut res =
        WarpScratch::lease::<PanelRes<S>>(panels, [[S::acc_zero(); PANEL_WIDTH]; WARP_SIZE]);
    let mut accs = WarpScratch::lease::<AccFrag<S>>(panels, acc_zero::<S>());
    let mut block_a: [S; WARP_SIZE] = [S::zero(); WARP_SIZE];
    let mut cids: [u32; WARP_SIZE] = [0; WARP_SIZE];
    let mut offset = piecing.base(part.off22, w);

    for i in 0..4usize {
        for acc in accs.iter_mut() {
            *acc = acc_zero::<S>();
        }
        probe.san_frag_clear();
        if i & 1 == 0 {
            // Even pass: the block's A values and ids load once — for
            // every panel — and stay in registers for the odd pass.
            probe.panel(None);
            block_a = load_block(&part.vals, offset);
            cids = load_block(&part.cids, offset);
            probe.load_val(BLOCK_ELEMS as u64, S::BYTES);
            probe.load_idx(BLOCK_ELEMS as u64, 4);
        }
        for panel in 0..panels {
            probe.panel(Some(panel));
            let w_p = b.panel_width(panel);
            let bp = b.panel(panel);
            for r in 0..MMA_M {
                // B-side pass mask: only the pass's piece positions
                // gather; the rest stay zero, exactly like SpMV's masked
                // x fragment. Dead fragment columns of a partial panel
                // also stay zero (the panel stores no padding).
                let frag_b: [S; WARP_SIZE] = per_lane(|l| {
                    let (k, jj) = (l & 3, l >> 2);
                    if piecing.active(i, k) && jj < w_p {
                        bp[cids[r * MMA_K + k] as usize * w_p + jj]
                    } else {
                        S::zero()
                    }
                });
                // One batched B access per row-segment over the pass's
                // active k positions (k-then-jj order).
                let mut xi = [0usize; WARP_SIZE];
                let mut nx = 0;
                for k in 0..MMA_K {
                    if piecing.active(i, k) {
                        let c = cids[r * MMA_K + k] as usize;
                        for jj in 0..w_p {
                            xi[nx] = b.lin_index(panel, c, jj);
                            nx += 1;
                        }
                    }
                }
                probe.load_x_warp(&xi[..nx], S::BYTES);
                // Row-segment issue: A masked to row r (the mask and the
                // other rows' inert 0*b adds are skipped — see the
                // variant's docs).
                mma_m8n8k4_row_segment::<S>(&mut accs[panel], &block_a, &frag_b, r);
                probe.mma();
                probe.san_frag_mma(row_slots(r));
            }
        }
        if i & 1 == 1 {
            offset += BLOCK_ELEMS;
        }
        for (panel, acc) in accs.iter().enumerate() {
            extract_rows::<S, P>(acc, i, &mut res[panel], probe);
        }
    }

    probe.panel(None);
    let perm = match piecing {
        Piecing::OneThree => &part.perm13,
        Piecing::TwoTwo => &part.perm22,
    };
    for (panel, res_p) in res.iter().enumerate() {
        write_permuted(
            perm,
            w,
            res_p,
            b.panel_width(panel),
            panel,
            y,
            y_rows,
            probe,
        );
    }
    probe.warp_end(w);
}

/// Runs the length-4 short-rows SpMM under the given executor.
pub fn spmm_short4_with<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
    exec: &Executor,
) {
    exec.run(part.n4_warps, probe, |w, p| {
        spmm_short4_warp(part, b, y, y_rows, w, p)
    });
}

/// Warp body: warp `w` computes four complete 8x4 blocks against every
/// live column of every RHS panel, each block's A loaded exactly once.
pub fn spmm_short4_warp<S: Scalar, P: Probe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    w: usize,
    probe: &mut P,
) {
    let panels = b.num_panels();
    probe.warp_begin(w);
    probe.san_region("spmm.short4");
    let mut res =
        WarpScratch::lease::<PanelRes<S>>(panels, [[S::acc_zero(); PANEL_WIDTH]; WARP_SIZE]);
    let mut accs = WarpScratch::lease::<AccFrag<S>>(panels, acc_zero::<S>());
    for i in 0..4usize {
        let offset = part.off4 + (w * 4 + i) * BLOCK_ELEMS;
        for acc in accs.iter_mut() {
            *acc = acc_zero::<S>();
        }
        probe.san_frag_clear();
        probe.panel(None);
        let block_a: [S; WARP_SIZE] = load_block(&part.vals, offset);
        let cids = load_block(&part.cids, offset);
        probe.load_val(BLOCK_ELEMS as u64, S::BYTES);
        probe.load_idx(BLOCK_ELEMS as u64, 4);
        for panel in 0..panels {
            probe.panel(Some(panel));
            let w_p = b.panel_width(panel);
            let bp = b.panel(panel);
            for r in 0..MMA_M {
                let frag_b: [S; WARP_SIZE] = per_lane(|l| {
                    let jj = l >> 2;
                    if jj < w_p {
                        bp[cids[r * MMA_K + (l & 3)] as usize * w_p + jj]
                    } else {
                        S::zero()
                    }
                });
                // One batched B access per row-segment (k-then-jj order).
                let mut xi = [0usize; WARP_SIZE];
                let mut nx = 0;
                for k in 0..MMA_K {
                    let c = cids[r * MMA_K + k] as usize;
                    for jj in 0..w_p {
                        xi[nx] = b.lin_index(panel, c, jj);
                        nx += 1;
                    }
                }
                probe.load_x_warp(&xi[..nx], S::BYTES);
                mma_m8n8k4_row_segment::<S>(&mut accs[panel], &block_a, &frag_b, r);
                probe.mma();
                probe.san_frag_mma(row_slots(r));
            }
        }
        for (panel, acc) in accs.iter().enumerate() {
            extract_rows::<S, P>(acc, i, &mut res[panel], probe);
        }
    }
    probe.panel(None);
    for (panel, res_p) in res.iter().enumerate() {
        write_permuted(
            &part.perm4,
            w,
            res_p,
            b.panel_width(panel),
            panel,
            y,
            y_rows,
            probe,
        );
    }
    probe.warp_end(w);
}

/// Runs the scalar singleton SpMM under the given executor.
pub fn spmm_short1_with<S: Scalar, P: ShardableProbe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
    exec: &Executor,
) {
    let n_warps = short1_warps(part);
    exec.run(n_warps, probe, |w, p| {
        spmm_short1_warp(part, b, y, y_rows, w, p)
    });
}

/// Warp body: each of the warp's 32 threads computes one singleton row's
/// products — the row's value and index load once, then one multiply per
/// live column of every RHS panel.
pub fn spmm_short1_warp<S: Scalar, P: Probe>(
    part: &ShortPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    w: usize,
    probe: &mut P,
) {
    let panels = b.num_panels();
    probe.warp_begin(w);
    probe.san_region("spmm.short1");
    let live = (w + 1) * WARP_SIZE;
    if live > part.n1 {
        probe.divergence((live - part.n1) as u64);
    }
    // One warp-scoped batch for all singleton rows: B accesses stream in
    // t-then-panel-then-jj order — every panel of one element back to
    // back, as the A-resident sweep issues them.
    let mut xb = XBatch::new(S::BYTES);
    for t in w * WARP_SIZE..live.min(part.n1) {
        let e = part.off1 + t;
        let c = part.cids[e] as usize;
        probe.panel(None);
        probe.load_val(1, S::BYTES);
        probe.load_idx(1, 4);
        let row = part.perm1[t] as usize;
        let mut writes = [0usize; PANEL_WIDTH];
        for panel in 0..panels {
            probe.panel(Some(panel));
            let w_p = b.panel_width(panel);
            let bp = b.panel(panel);
            for jj in 0..w_p {
                let v = S::mul_to_acc(part.vals[e], bp[c * w_p + jj]);
                xb.push(probe, b.lin_index(panel, c, jj));
                let idx = panel * y_rows * PANEL_WIDTH + row * w_p + jj;
                y.write(idx, S::from_acc(v));
                writes[jj] = idx;
            }
            probe.fma(w_p as u64);
            probe.san_write_warp(space::Y, &writes[..w_p]);
            probe.store_y(w_p as u64, S::BYTES);
        }
    }
    xb.flush(probe);
    probe.warp_end(w);
}

/// Write-back shared by the three MMA short kernels: permuted slots with
/// `NO_ROW` padding predicated off.
#[allow(clippy::too_many_arguments)]
fn write_permuted<S: Scalar, P: Probe>(
    perm: &[u32],
    w: usize,
    res: &PanelRes<S>,
    w_p: usize,
    panel: usize,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
) {
    // Shadow writes and store traffic batch once for the whole warp.
    let mut writes = [0usize; WARP_SIZE * PANEL_WIDTH];
    let mut nw = 0;
    let mut inactive = 0u64;
    for lane in 0..WARP_SIZE {
        let row = perm[w * WARP_SIZE + lane];
        if row != NO_ROW {
            for jj in 0..w_p {
                let idx = panel * y_rows * PANEL_WIDTH + row as usize * w_p + jj;
                y.write(idx, S::from_acc(res[lane][jj]));
                writes[nw] = idx;
                nw += 1;
            }
        } else {
            inactive += 1;
        }
    }
    probe.san_write_warp(space::Y, &writes[..nw]);
    probe.store_y(nw as u64, S::BYTES);
    if inactive > 0 {
        probe.divergence(inactive);
    }
}

//! Multi-RHS long-rows kernel.
//!
//! Same two-phase shape as SpMV (one warp per 64-element group, then one
//! warp per long row), widened to arbitrary RHS widths with an
//! **A-resident panel sweep**: phase 1 loads each block's A values and
//! indices **once**, then issues the 8 masked-A MMAs for every RHS panel
//! while the fragment sits in registers, and collapses the per-column
//! partial sums with a `shfl_down 8, 16, 4` tree that reproduces SpMV's
//! exact add association per column. The auxiliary `warpVal` array holds
//! one accumulator slot per (group, panel, column).

use dasp_fp16::Scalar;
use dasp_simt::mma::{acc_zero, mma_m8n8k4_row_segment, row_slots, AccFrag, MMA_K, MMA_M};
use dasp_simt::warp::{full_mask, per_lane, WARP_SIZE};
use dasp_simt::SharedSlice;
use dasp_simt::{checked, space, Executor, Probe, ShardableProbe};
use dasp_sparse::{DenseMat, PANEL_WIDTH};

use dasp_simt::WarpScratch;

use crate::consts::{BLOCK_ELEMS, GROUP_ELEMS};
use crate::format::LongPart;
use crate::kernels::load_block;

/// Runs the two-phase long-rows SpMM under the given executor, scattering
/// results into the panel-layout output slice `y` (`y_rows` rows). All
/// phase-1 group warps complete before phase 2 starts, as on the device.
pub fn spmm_long_with<S: Scalar, P: ShardableProbe>(
    part: &LongPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
    exec: &Executor,
) {
    let n_groups = part.num_groups();
    let panels = b.num_panels();
    if n_groups == 0 || panels == 0 {
        return;
    }
    // Arena-leased per-launch scratch (recycled capacity across launches).
    let mut warp_val = WarpScratch::lease(n_groups * panels * PANEL_WIDTH, S::acc_zero());
    {
        let wv = SharedSlice::new(&mut warp_val);
        exec.run(n_groups, probe, |g, p| {
            spmm_long_phase1_warp(part, b, &wv, g, p)
        });
    }
    exec.run(part.rows.len(), probe, |lr, p| {
        spmm_long_phase2_warp(part, b, &warp_val, y, y_rows, lr, p)
    });
}

/// Phase-1 warp body: warp `g` computes one group's partial sums for
/// every live column of every RHS panel, with the group's two A blocks
/// loaded exactly once.
pub fn spmm_long_phase1_warp<S: Scalar, P: Probe>(
    part: &LongPart<S>,
    b: &DenseMat<S>,
    warp_val: &SharedSlice<S::Acc>,
    g: usize,
    probe: &mut P,
) {
    let panels = b.num_panels();
    let mask = full_mask();
    probe.warp_begin(g);
    probe.san_region("spmm.long.phase1");
    let mut accs = WarpScratch::lease::<AccFrag<S>>(panels, acc_zero::<S>());
    probe.san_frag_clear();
    let mut offset_a = g * GROUP_ELEMS;
    for _i in 0..2 {
        // The block's A values and column ids load once for *all* panels
        // — the full-width amortization over looped SpMV.
        probe.panel(None);
        let block_a: [S; WARP_SIZE] = load_block(&part.vals, offset_a);
        let cids = load_block(&part.cids, offset_a);
        probe.load_val(BLOCK_ELEMS as u64, S::BYTES);
        probe.load_idx(BLOCK_ELEMS as u64, 4);
        for panel in 0..panels {
            probe.panel(Some(panel));
            let w_p = b.panel_width(panel);
            let bp = b.panel(panel);
            for r in 0..MMA_M {
                // Pack row-segment r's gathered B rows across the live
                // fragment columns; dead columns of a partial panel
                // gather an explicit zero (the panel stores no padding).
                // Element (r, k) sits at lane r*4+k, so its column id is
                // cids[r*4+k]. The A-side row mask happens inside the
                // row-segment MMA variant, which skips the inert 0*b adds.
                let frag_b: [S; WARP_SIZE] = per_lane(|l| {
                    let jj = l >> 2;
                    if jj < w_p {
                        bp[cids[r * MMA_K + (l & 3)] as usize * w_p + jj]
                    } else {
                        S::zero()
                    }
                });
                // One batched B access per row-segment, covering all
                // 4*w_p gathered elements in k-then-jj emission order.
                let mut xi = [0usize; WARP_SIZE];
                let mut nx = 0;
                for k in 0..MMA_K {
                    let c = cids[r * MMA_K + k] as usize;
                    for jj in 0..w_p {
                        xi[nx] = b.lin_index(panel, c, jj);
                        nx += 1;
                    }
                }
                probe.load_x_warp(&xi[..nx], S::BYTES);
                mma_m8n8k4_row_segment::<S>(&mut accs[panel], &block_a, &frag_b, r);
                probe.mma();
                probe.san_frag_mma(row_slots(r));
            }
        }
        offset_a += BLOCK_ELEMS;
    }
    probe.panel(None);
    // Collapse the 8 row-segment partials per (panel, column). Column j
    // of segment i lives at lane i*4 + (j>>1), register j&1: summing rows
    // is a stride-4 lane tree, and shfl_down 8 / 16 / 4 lands the SpMV
    // add association [(C0+C2)+(C4+C6)] + [(C1+C3)+(C5+C7)] at lane j>>1.
    for (panel, acc) in accs.iter().enumerate() {
        for lane in 0..WARP_SIZE {
            probe.san_frag_read(lane, 0);
            probe.san_frag_read(lane, 1);
        }
        let mut y0: [S::Acc; WARP_SIZE] = per_lane(|l| acc[l][0]);
        let mut y1: [S::Acc; WARP_SIZE] = per_lane(|l| acc[l][1]);
        for delta in [8usize, 16, 4] {
            let d = checked::shfl_down_sync(probe, mask, y0, delta);
            for l in 0..WARP_SIZE {
                y0[l] = S::acc_add(y0[l], d[l]);
            }
            let d = checked::shfl_down_sync(probe, mask, y1, delta);
            for l in 0..WARP_SIZE {
                y1[l] = S::acc_add(y1[l], d[l]);
            }
        }
        probe.shfl(6);
        let w_p = b.panel_width(panel);
        let mut writes = [0usize; PANEL_WIDTH];
        for jj in 0..w_p {
            let v = if jj & 1 == 0 {
                y0[jj >> 1]
            } else {
                y1[jj >> 1]
            };
            warp_val.write((g * panels + panel) * PANEL_WIDTH + jj, v);
            writes[jj] = (g * panels + panel) * PANEL_WIDTH + jj;
        }
        probe.san_write_warp(space::AUX, &writes[..w_p]);
        probe.store_y(w_p as u64, S::ACC_BYTES);
    }
    probe.warp_end(g);
}

/// Phase-2 warp body: warp `lr` reduces long row `lr`'s group partials
/// per live column of every RHS panel, loading the row's group extent
/// once.
pub fn spmm_long_phase2_warp<S: Scalar, P: Probe>(
    part: &LongPart<S>,
    b: &DenseMat<S>,
    warp_val: &[S::Acc],
    y: &SharedSlice<S>,
    y_rows: usize,
    lr: usize,
    probe: &mut P,
) {
    let panels = b.num_panels();
    let mask = full_mask();
    probe.warp_begin(lr);
    probe.san_region("spmm.long.phase2");
    let orig_row = part.rows[lr] as usize;
    let lo = part.group_ptr[lr];
    let hi = part.group_ptr[lr + 1];
    probe.load_meta(2, 4); // groupPtr (int32 on device)
    let row_warp_len = hi - lo;
    let tail = row_warp_len % WARP_SIZE;
    if tail != 0 {
        probe.divergence((WARP_SIZE - tail) as u64);
    }
    for panel in 0..panels {
        let w_p = b.panel_width(panel);
        let mut writes = [0usize; PANEL_WIDTH];
        for jj in 0..w_p {
            // Per column: the exact strided sum + tree reduction of SpMV's
            // phase 2, reading the widened warpVal slots. The strided loop
            // runs stride-major (device coalescing order): each pass adds
            // one warpVal slot per lane and issues one batched shadow read.
            let mut thread_val: [S::Acc; WARP_SIZE] = [S::acc_zero(); WARP_SIZE];
            let mut stride_idx = [0usize; WARP_SIZE];
            let mut base = 0;
            while base < row_warp_len {
                let n = (row_warp_len - base).min(WARP_SIZE);
                for (lane, si) in stride_idx[..n].iter_mut().enumerate() {
                    *si = ((lo + base + lane) * panels + panel) * PANEL_WIDTH + jj;
                }
                for lane in 0..n {
                    thread_val[lane] = S::acc_add(thread_val[lane], warp_val[stride_idx[lane]]);
                }
                probe.san_read_warp(space::AUX, &stride_idx[..n]);
                probe.load_meta(n as u64, S::ACC_BYTES);
                base += WARP_SIZE;
            }
            let reduced = checked::warp_reduce(probe, mask, thread_val, |a, b| S::acc_add(a, b));
            probe.shfl(dasp_simt::shuffle::WARP_REDUCE_SHFLS);
            let idx = panel * y_rows * PANEL_WIDTH + orig_row * w_p + jj;
            y.write(idx, S::from_acc(reduced[0]));
            writes[jj] = idx;
        }
        probe.san_write_warp(space::Y, &writes[..w_p]);
        probe.store_y(w_p as u64, S::BYTES);
    }
    probe.warp_end(lr);
}

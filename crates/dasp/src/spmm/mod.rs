//! SpMM: multi-RHS variants of the DASP kernels that fill all 8 MMA
//! B-columns.
//!
//! SpMV by construction feeds `mma.m8n8k4` a single vector — 7 of the 8
//! B-fragment columns are dead weight, and a batched matvec that loops
//! single-vector SpMV re-streams every byte of A (values *and* column
//! indices) once per right-hand side. These kernels instead take the RHS
//! as a [`DenseMat`] of column panels of width [`PANEL_WIDTH`] = `MMA_N`
//! = 8 and run an **A-resident panel sweep**: per 8×4 block, the A
//! fragment and its column indices load once and stay register-resident
//! while the warp issues the masked-A MMAs for *every* RHS panel, so
//! **each A fragment and its index bytes are loaded once per N vectors
//! instead of once per vector** — the amortization scales with the full
//! RHS width, not one panel. The [`DaspMatrix`] format is reused
//! completely unchanged.
//!
//! # The masked-A segment scheme
//!
//! SpMV packs eight *different* row-segments' gathered `x` values into the
//! B fragment and reads the eight inner products off the accumulator
//! diagonal — possible only because each segment gets its own B column.
//! With 8 live right-hand sides the B fragment is fully occupied by RHS
//! columns (`B[k][j] = X_j[cid(r, k)]`), which is a *per-segment* gather:
//! one MMA issue now computes one row-segment against all 8 vectors, so a
//! block takes 8 issues per panel instead of 1 per vector — the **same**
//! MMA count as looped SpMV, while A traffic drops 8x. Per segment `r` the
//! A fragment is masked to row `r` (other rows zeroed), so all 8 issues
//! can share one accumulator fragment: the cross-segment contributions are
//! `0 * b` products, and adding `±0.0` to a running accumulator that
//! starts at `+0.0` can never flip a bit under round-to-nearest (opposite
//! -sign zero sums and exact cancellations both round to `+0.0`). That is
//! what makes every output column of `spmm` **bit-identical** to the
//! corresponding single-vector `spmv`: per output `C[r][j]` the FMA chain
//! is the exact `k`-ordered sequence SpMV issues, interleaved only with
//! bit-inert zero adds. (The one caveat: a non-finite A or B value would
//! turn a masked `0 * b` into a NaN — the kernels, like the rest of this
//! stack, assume finite inputs.)
//!
//! The piecing short kernels mask the **B side** per pass exactly like
//! SpMV masks its `x` gather (length-1 piece first, then the length-3
//! piece), so even the `a * 0` products of the piecing passes replicate
//! SpMV's own sequence. The long kernel's partial-sum collapse reproduces
//! SpMV's exact add association `[(C0+C2)+(C4+C6)] + [(C1+C3)+(C5+C7)]`
//! per column with a `shfl_down 8, 16, 4` tree (SpMV's `9, 18, bcast-4`
//! sequence is the single-column diagonal special case of the same tree).
//!
//! # Probe accounting
//!
//! `load_val`/`load_idx` fire **once per block per sweep** — however many
//! panels the RHS has; that is the A-amortization the roofline estimate
//! then shows — while `load_x` (B-side gathers, addressed through
//! [`DenseMat::lin_index`] so the cache model sees the panel-contiguous
//! layout), `fma`, and `mma` counts equal the looped-SpMV totals. The
//! kernels hint [`dasp_simt::Probe::panel`] around their loads, so a
//! counting probe can split `dram`/`val`/`idx` bytes into a shared
//! (A-resident) bin and per-panel bins. Partial panels only gather and
//! store their live columns; the last panel stores no padding at all
//! (its stride is its live width), and the dead B-fragment columns of a
//! partial panel read an explicit zero.

#![allow(clippy::needless_range_loop)]

use dasp_fp16::Scalar;
use dasp_simt::mma::{AccFrag, MMA_M};
use dasp_simt::warp::WARP_SIZE;
use dasp_simt::{Executor, Probe, ShardableProbe, SharedSlice};
use dasp_sparse::{DenseMat, PANEL_WIDTH};
use dasp_trace::Tracer;

use crate::format::DaspMatrix;
use crate::kernels::short1_warps;

mod long;
mod medium;
mod short;

pub use long::spmm_long_with;
pub use medium::spmm_medium_with;
pub use short::{spmm_short13_with, spmm_short1_with, spmm_short22_with, spmm_short4_with};

/// Per-lane result registers for one warp: each of the 32 output slots
/// holds its row's value for every panel column.
pub(crate) type PanelRes<S> = [[<S as Scalar>::Acc; PANEL_WIDTH]; WARP_SIZE];

/// Pulls row-segment `i`'s eight row results — all [`PANEL_WIDTH`] columns
/// of each — out of the accumulator fragment into result slots
/// `i*8..(i+1)*8`, mirroring the SpMV kernels' `extract_diagonals`.
///
/// `C[r][j]` lives at lane `r*4 + (j>>1)`, register `j&1`. The two
/// variable-source shuffle *issues* counted here are the same pair SpMV
/// spends per extraction: shuffles move whole registers, so the panel
/// columns ride along in the register pair each lane already holds.
#[inline]
pub(crate) fn extract_rows<S: Scalar, P: Probe>(
    acc: &AccFrag<S>,
    i: usize,
    res: &mut PanelRes<S>,
    probe: &mut P,
) {
    for r in 0..MMA_M {
        for j in 0..PANEL_WIDTH {
            // Initcheck: every accumulator slot is consumed here (padding
            // columns read the zero-initialized fragment).
            probe.san_frag_read(r * 4 + (j >> 1), j & 1);
            res[i * MMA_M + r][j] = acc[r * 4 + (j >> 1)][j & 1];
        }
    }
    probe.shfl(2);
}

impl<S: Scalar> DaspMatrix<S> {
    /// Computes `Y = A B` with the multi-RHS DASP kernels under the
    /// process-default executor ([`Executor::from_env`]).
    ///
    /// `b.rows()` must equal the matrix's column count. Every column of
    /// the result is bit-identical to [`DaspMatrix::spmv`] of the same
    /// column of `b`.
    pub fn spmm<P: ShardableProbe>(&self, b: &DenseMat<S>, probe: &mut P) -> DenseMat<S> {
        self.spmm_with(b, probe, &Executor::from_env())
    }

    /// [`DaspMatrix::spmm`] under an explicit executor.
    pub fn spmm_with<P: ShardableProbe>(
        &self,
        b: &DenseMat<S>,
        probe: &mut P,
        exec: &Executor,
    ) -> DenseMat<S> {
        let mut y = DenseMat::zeros(self.rows, b.cols());
        self.spmm_into_traced_with(b, &mut y, probe, &Tracer::disabled(), exec);
        y
    }

    /// [`DaspMatrix::spmm`] with spans: records a `spmm` root span (with
    /// `rhs_width` and panel-count args) and one child per category
    /// kernel.
    pub fn spmm_traced<P: ShardableProbe>(
        &self,
        b: &DenseMat<S>,
        probe: &mut P,
        tracer: &Tracer,
    ) -> DenseMat<S> {
        let mut y = DenseMat::zeros(self.rows, b.cols());
        self.spmm_into_traced_with(b, &mut y, probe, tracer, &Executor::from_env());
        y
    }

    /// Computes `Y = A B` into a caller-provided panel matrix — the
    /// single dispatch every other SpMM entry point funnels through.
    ///
    /// Records a `spmm` root span plus `spmm.{long,medium,short}`
    /// children, each carrying its probe counter delta and an `rhs_width`
    /// arg so traces can attribute bytes-per-vector (the four short
    /// sub-kernels share one launch and one span, as in SpMV). Panels run
    /// **innermost**: each warp holds its A block register-resident and
    /// sweeps every RHS panel before advancing, under whichever executor
    /// is selected — `ShardableProbe` merge semantics are identical to
    /// the SpMV kernels'.
    ///
    /// Like SpMV, the run transparently re-dispatches through a
    /// [`dasp_sanitize::SanitizeProbe`] when `DASP_SANITIZE` is set.
    pub fn spmm_into_traced_with<P: ShardableProbe>(
        &self,
        b: &DenseMat<S>,
        y: &mut DenseMat<S>,
        probe: &mut P,
        tracer: &Tracer,
        exec: &Executor,
    ) {
        if dasp_sanitize::enabled() && !probe.sanitizing() {
            let mut sp = dasp_sanitize::SanitizeProbe::forked(probe);
            self.spmm_into_traced_with_impl(b, y, &mut sp, tracer, exec);
            dasp_sanitize::fleet_finish("spmm", sp, probe);
        } else {
            self.spmm_into_traced_with_impl(b, y, probe, tracer, exec);
        }
    }

    fn spmm_into_traced_with_impl<P: ShardableProbe>(
        &self,
        b: &DenseMat<S>,
        y: &mut DenseMat<S>,
        probe: &mut P,
        tracer: &Tracer,
        exec: &Executor,
    ) {
        assert_eq!(
            b.rows(),
            self.cols,
            "B has {} rows, matrix has {} cols",
            b.rows(),
            self.cols
        );
        assert_eq!(
            (y.rows(), y.cols()),
            (self.rows, b.cols()),
            "Y is {}x{}, expected {}x{}",
            y.rows(),
            y.cols(),
            self.rows,
            b.cols()
        );
        let width = b.cols();
        let panels = b.num_panels();
        let mut root = tracer.span("spmm");
        root.add_arg("rows", self.rows);
        root.add_arg("nnz", self.nnz);
        root.add_arg("rhs_width", width);
        root.add_arg("panels", panels);
        let run_before = probe.stats_snapshot();
        y.fill_zero();
        if self.nnz == 0 || width == 0 {
            root.set_stats(probe.stats_snapshot().delta(&run_before));
            return;
        }
        use crate::consts::WARPS_PER_BLOCK;
        let wpb = WARPS_PER_BLOCK as u64;
        let y_rows = self.rows;
        let y_slice = SharedSlice::new(y.data_mut());
        if self.long.num_groups() > 0 {
            let mut sp = root.child("spmm.long");
            sp.add_arg("groups", self.long.num_groups());
            sp.add_arg("rhs_width", width);
            let before = probe.stats_snapshot();
            // One launch per category: each warp sweeps every panel with
            // its A block register-resident, so the grid does not scale
            // with the panel count.
            probe.kernel_launch(self.long.num_groups().div_ceil(WARPS_PER_BLOCK) as u64, wpb);
            spmm_long_with(&self.long, b, &y_slice, y_rows, probe, exec);
            sp.set_stats(probe.stats_snapshot().delta(&before));
        }
        if !self.medium.rows.is_empty() {
            let mut sp = root.child("spmm.medium");
            sp.add_arg("rowblocks", self.medium.num_rowblocks());
            sp.add_arg("rhs_width", width);
            let before = probe.stats_snapshot();
            let warps = self
                .medium
                .num_rowblocks()
                .div_ceil(crate::consts::loop_num(self.medium.rows.len()));
            probe.kernel_launch(warps.div_ceil(WARPS_PER_BLOCK) as u64, wpb);
            spmm_medium_with(&self.medium, b, &y_slice, y_rows, probe, exec);
            sp.set_stats(probe.stats_snapshot().delta(&before));
        }
        let short_warps = self.short.n13_warps
            + self.short.n4_warps
            + self.short.n22_warps
            + short1_warps(&self.short);
        if short_warps > 0 {
            let mut sp = root.child("spmm.short");
            sp.add_arg("warps", short_warps);
            sp.add_arg("rhs_width", width);
            let before = probe.stats_snapshot();
            probe.kernel_launch(short_warps.div_ceil(WARPS_PER_BLOCK) as u64, wpb);
            spmm_short13_with(&self.short, b, &y_slice, y_rows, probe, exec);
            spmm_short4_with(&self.short, b, &y_slice, y_rows, probe, exec);
            spmm_short22_with(&self.short, b, &y_slice, y_rows, probe, exec);
            spmm_short1_with(&self.short, b, &y_slice, y_rows, probe, exec);
            sp.set_stats(probe.stats_snapshot().delta(&before));
        }
        root.set_stats(probe.stats_snapshot().delta(&run_before));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_simt::mma::MMA_N;

    #[test]
    fn panel_width_is_the_mma_b_width() {
        // DenseMat lives in dasp-sparse, which cannot see the MMA shape;
        // this crate owns both sides of the contract.
        assert_eq!(PANEL_WIDTH, MMA_N);
        assert_eq!(MMA_M, 8);
    }
}

//! Multi-RHS medium-rows kernel.
//!
//! Warp shape follows SpMV — `LOOP_NUM` row-blocks per warp, regular
//! blocks through the MMA unit, then a per-lane irregular tail — with an
//! **A-resident panel sweep**: each regular block's A fragment and column
//! indices load once and stay in registers while the warp issues the 8
//! masked-A MMAs for *every* RHS panel, so A+index traffic amortizes over
//! the whole RHS width instead of one 8-column panel. The irregular
//! tail's scalar values/indices likewise load once per element with the
//! FMA fanned across every panel's live columns.

use dasp_fp16::Scalar;
use dasp_simt::mma::{acc_zero, mma_m8n8k4_row_segment, row_slots, AccFrag, MMA_K, MMA_M};
use dasp_simt::warp::{per_lane, WARP_SIZE};
use dasp_simt::{space, Executor, Probe, ShardableProbe, SharedSlice, WarpScratch, XBatch};
use dasp_sparse::{DenseMat, PANEL_WIDTH};

use crate::consts::{loop_num, BLOCK_ELEMS};
use crate::format::MediumPart;
use crate::kernels::load_block;
use crate::kernels::medium_warps;
use crate::spmm::{extract_rows, PanelRes};

/// Runs the medium-rows SpMM under the given executor, scattering results
/// into the panel-layout output slice `y`.
pub fn spmm_medium_with<S: Scalar, P: ShardableProbe>(
    part: &MediumPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
    exec: &Executor,
) {
    let n_warps = medium_warps(part);
    exec.run(n_warps, probe, |mw, p| {
        spmm_medium_warp(part, b, y, y_rows, mw, p)
    });
}

/// Warp body: warp `mw` computes `LOOP_NUM` row-blocks, sweeping every
/// RHS panel per A block while the fragment is register-resident.
pub fn spmm_medium_warp<S: Scalar, P: Probe>(
    part: &MediumPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    mw: usize,
    probe: &mut P,
) {
    let n_rows = part.rows.len();
    let ln = loop_num(n_rows);
    let n_rowblocks = part.num_rowblocks();
    let panels = b.num_panels();
    let total_cols = b.cols();

    probe.warp_begin(mw);
    probe.san_region("spmm.medium");
    let mut res =
        WarpScratch::lease::<PanelRes<S>>(panels, [[S::acc_zero(); PANEL_WIDTH]; WARP_SIZE]);
    let mut accs = WarpScratch::lease::<AccFrag<S>>(panels, acc_zero::<S>());

    for i in 0..ln {
        let bid = mw * ln + i;
        if bid >= n_rowblocks {
            break;
        }
        probe.panel(None);
        probe.load_meta(2, 4); // rowblockPtr (int32 on device)
        let mut offset_a = part.rowblock_ptr[bid];
        let nblocks = part.reg_blocks(bid);
        for acc in accs.iter_mut() {
            *acc = acc_zero::<S>();
        }
        probe.san_frag_clear();
        for _b in 0..nblocks {
            // A values + ids once per block for *all* panels — the
            // amortization. 8 masked-A issues per panel cover the 8
            // row-segments x up-to-8 columns.
            probe.panel(None);
            let block_a: [S; WARP_SIZE] = load_block(&part.reg_val, offset_a);
            let cids = load_block(&part.reg_cid, offset_a);
            probe.load_val(BLOCK_ELEMS as u64, S::BYTES);
            probe.load_idx(BLOCK_ELEMS as u64, 4);
            for panel in 0..panels {
                probe.panel(Some(panel));
                let w_p = b.panel_width(panel);
                let bp = b.panel(panel);
                for r in 0..MMA_M {
                    // Dead fragment columns of a partial panel gather an
                    // explicit zero (the panel stores no padding).
                    let frag_b: [S; WARP_SIZE] = per_lane(|l| {
                        let jj = l >> 2;
                        if jj < w_p {
                            bp[cids[r * MMA_K + (l & 3)] as usize * w_p + jj]
                        } else {
                            S::zero()
                        }
                    });
                    // One batched B access per row-segment (k-then-jj order).
                    let mut xi = [0usize; WARP_SIZE];
                    let mut nx = 0;
                    for k in 0..MMA_K {
                        let c = cids[r * MMA_K + k] as usize;
                        for jj in 0..w_p {
                            xi[nx] = b.lin_index(panel, c, jj);
                            nx += 1;
                        }
                    }
                    probe.load_x_warp(&xi[..nx], S::BYTES);
                    mma_m8n8k4_row_segment::<S>(&mut accs[panel], &block_a, &frag_b, r);
                    probe.mma();
                    probe.san_frag_mma(row_slots(r));
                }
            }
            offset_a += BLOCK_ELEMS;
        }
        for (panel, acc) in accs.iter().enumerate() {
            extract_rows::<S, P>(acc, i, &mut res[panel], probe);
        }
    }

    // Irregular part + write-back: one lane per row, its scalar A
    // element loaded once and FMA'd against every live column of every
    // panel.
    let lane_cap = (ln * MMA_M).min(WARP_SIZE);
    let rows_here = n_rows.saturating_sub(mw * ln * MMA_M).min(lane_cap);
    if rows_here < WARP_SIZE {
        probe.divergence((WARP_SIZE - rows_here) as u64);
    }
    // B accesses of the whole irregular tail stream through one batch in
    // lane-then-element-then-panel-then-jj order: consecutive panels of
    // one element issue back to back, which is what the A-resident sweep
    // buys the cache model.
    let mut xb = XBatch::new(S::BYTES);
    let mut v = WarpScratch::lease::<[S::Acc; PANEL_WIDTH]>(panels, [S::acc_zero(); PANEL_WIDTH]);
    for lane in 0..lane_cap {
        let cur_row = mw * ln * MMA_M + lane;
        if cur_row >= n_rows {
            continue;
        }
        probe.panel(None);
        probe.load_meta(2, 4); // irregPtr (int32 on device)
        for (panel, vp) in v.iter_mut().enumerate() {
            *vp = res[panel][lane];
        }
        let (jlo, jhi) = (part.irreg_ptr[cur_row], part.irreg_ptr[cur_row + 1]);
        for e in jlo..jhi {
            let a = part.irreg_val[e];
            let c = part.irreg_cid[e] as usize;
            for panel in 0..panels {
                probe.panel(Some(panel));
                let w_p = b.panel_width(panel);
                let bp = b.panel(panel);
                for jj in 0..w_p {
                    v[panel][jj] = S::acc_mul_add(v[panel][jj], a, bp[c * w_p + jj]);
                    xb.push(probe, b.lin_index(panel, c, jj));
                }
            }
        }
        probe.panel(None);
        let elems = (jhi - jlo) as u64;
        probe.load_val(elems, S::BYTES);
        probe.load_idx(elems, 4);
        probe.fma(elems * total_cols as u64);
        let orow = part.rows[cur_row] as usize;
        let mut writes = [0usize; PANEL_WIDTH];
        for panel in 0..panels {
            let w_p = b.panel_width(panel);
            for jj in 0..w_p {
                let idx = panel * y_rows * PANEL_WIDTH + orow * w_p + jj;
                y.write(idx, S::from_acc(v[panel][jj]));
                writes[jj] = idx;
            }
            probe.san_write_warp(space::Y, &writes[..w_p]);
            probe.store_y(w_p as u64, S::BYTES);
        }
    }
    xb.flush(probe);
    probe.warp_end(mw);
}

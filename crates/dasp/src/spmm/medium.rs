//! Multi-RHS medium-rows kernel.
//!
//! Warp shape follows SpMV — `LOOP_NUM` row-blocks per warp, regular
//! blocks through the MMA unit, then a per-lane irregular tail — with each
//! regular block loaded once per panel and issued as 8 masked-A MMAs, and
//! the irregular tail's scalar values/indices likewise loaded once with
//! the FMA fanned across the panel columns.

use dasp_fp16::Scalar;
use dasp_simt::mma::{acc_zero, mma_m8n8k4_row_segment, row_slots, MMA_K, MMA_M};
use dasp_simt::warp::{per_lane, WARP_SIZE};
use dasp_simt::{space, Executor, Probe, ShardableProbe, SharedSlice, XBatch};
use dasp_sparse::{DenseMat, PANEL_WIDTH};

use crate::consts::{loop_num, BLOCK_ELEMS};
use crate::format::MediumPart;
use crate::kernels::load_block;
use crate::kernels::medium_warps;
use crate::spmm::{extract_rows, PanelRes};

/// Runs the medium-rows SpMM under the given executor, scattering results
/// into the panel-layout output slice `y`.
pub fn spmm_medium_with<S: Scalar, P: ShardableProbe>(
    part: &MediumPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    probe: &mut P,
    exec: &Executor,
) {
    let n_warps = medium_warps(part);
    let panels = b.num_panels();
    exec.run(n_warps * panels, probe, |wid, p| {
        spmm_medium_warp(part, b, y, y_rows, n_warps, wid, p)
    });
}

/// Warp body: warp `wid = panel * n_warps + mw` computes `LOOP_NUM`
/// row-blocks against every live column of its panel.
pub fn spmm_medium_warp<S: Scalar, P: Probe>(
    part: &MediumPart<S>,
    b: &DenseMat<S>,
    y: &SharedSlice<S>,
    y_rows: usize,
    n_warps: usize,
    wid: usize,
    probe: &mut P,
) {
    let (panel, mw) = (wid / n_warps, wid % n_warps);
    let n_rows = part.rows.len();
    let ln = loop_num(n_rows);
    let n_rowblocks = part.num_rowblocks();
    let w_p = b.panel_width(panel);
    let bp = b.panel(panel);

    probe.warp_begin(wid);
    probe.san_region("spmm.medium");
    let mut res: PanelRes<S> = [[S::acc_zero(); PANEL_WIDTH]; WARP_SIZE];

    for i in 0..ln {
        let bid = mw * ln + i;
        if bid >= n_rowblocks {
            break;
        }
        probe.load_meta(2, 4); // rowblockPtr (int32 on device)
        let mut offset_a = part.rowblock_ptr[bid];
        let nblocks = part.reg_blocks(bid);
        let mut acc = acc_zero::<S>();
        probe.san_frag_clear();
        for _b in 0..nblocks {
            // A values + ids once per block per panel (the amortization);
            // 8 masked-A issues cover the 8 row-segments x 8 columns.
            let block_a: [S; WARP_SIZE] = load_block(&part.reg_val, offset_a);
            let cids = load_block(&part.reg_cid, offset_a);
            probe.load_val(BLOCK_ELEMS as u64, S::BYTES);
            probe.load_idx(BLOCK_ELEMS as u64, 4);
            for r in 0..MMA_M {
                let frag_b: [S; WARP_SIZE] =
                    per_lane(|l| bp[cids[r * MMA_K + (l & 3)] as usize * PANEL_WIDTH + (l >> 2)]);
                // One batched B access per row-segment (k-then-jj order).
                let mut xi = [0usize; WARP_SIZE];
                let mut nx = 0;
                for k in 0..MMA_K {
                    let c = cids[r * MMA_K + k] as usize;
                    for jj in 0..w_p {
                        xi[nx] = b.lin_index(panel, c, jj);
                        nx += 1;
                    }
                }
                probe.load_x_warp(&xi[..nx], S::BYTES);
                mma_m8n8k4_row_segment::<S>(&mut acc, &block_a, &frag_b, r);
                probe.mma();
                probe.san_frag_mma(row_slots(r));
            }
            offset_a += BLOCK_ELEMS;
        }
        extract_rows::<S, P>(&acc, i, &mut res, probe);
    }

    // Irregular part + write-back: one lane per row, its scalar A
    // element loaded once and FMA'd against every live column.
    let lane_cap = (ln * MMA_M).min(WARP_SIZE);
    let rows_here = n_rows.saturating_sub(mw * ln * MMA_M).min(lane_cap);
    if rows_here < WARP_SIZE {
        probe.divergence((WARP_SIZE - rows_here) as u64);
    }
    // B accesses of the whole irregular tail stream through one batch in
    // the same lane-then-element-then-jj order the per-element calls used,
    // so classification is identical with ~w_p*rows fewer probe calls.
    let mut xb = XBatch::new(S::BYTES);
    for lane in 0..lane_cap {
        let cur_row = mw * ln * MMA_M + lane;
        if cur_row >= n_rows {
            continue;
        }
        probe.load_meta(2, 4); // irregPtr (int32 on device)
        let mut v: [S::Acc; PANEL_WIDTH] = res[lane];
        let (jlo, jhi) = (part.irreg_ptr[cur_row], part.irreg_ptr[cur_row + 1]);
        for e in jlo..jhi {
            let a = part.irreg_val[e];
            let c = part.irreg_cid[e] as usize;
            for jj in 0..w_p {
                v[jj] = S::acc_mul_add(v[jj], a, bp[c * PANEL_WIDTH + jj]);
                xb.push(probe, b.lin_index(panel, c, jj));
            }
        }
        let elems = (jhi - jlo) as u64;
        probe.load_val(elems, S::BYTES);
        probe.load_idx(elems, 4);
        probe.fma(elems * w_p as u64);
        let orow = part.rows[cur_row] as usize;
        let mut writes = [0usize; PANEL_WIDTH];
        for jj in 0..w_p {
            y.write(
                (panel * y_rows + orow) * PANEL_WIDTH + jj,
                S::from_acc(v[jj]),
            );
            writes[jj] = (panel * y_rows + orow) * PANEL_WIDTH + jj;
        }
        probe.san_write_warp(space::Y, &writes[..w_p]);
        probe.store_y(w_p as u64, S::BYTES);
    }
    xb.flush(probe);
    probe.warp_end(wid);
}

//! The SpMV entry point: dispatches all category kernels.

#![allow(clippy::needless_range_loop)]

use dasp_fp16::Scalar;
use dasp_simt::Probe;
use dasp_trace::Tracer;

use crate::format::DaspMatrix;
use crate::kernels::{
    spmv_long, spmv_medium, spmv_short1, spmv_short13, spmv_short22, spmv_short4,
};

impl<S: Scalar> DaspMatrix<S> {
    /// Computes `y = A x` with the DASP kernels, threading `probe` through
    /// every memory access and arithmetic issue.
    ///
    /// `x.len()` must equal the matrix's column count. Rows with no
    /// nonzeros produce `0`. Results are rounded to storage precision, as
    /// the GPU kernels write `y` in the matrix's element type.
    pub fn spmv<P: Probe>(&self, x: &[S], probe: &mut P) -> Vec<S> {
        let mut y = vec![S::zero(); self.rows];
        self.spmv_into(x, &mut y, probe);
        y
    }

    /// Computes `y = A x` into a caller-provided buffer (no allocation):
    /// the solver-loop API. `y` is fully overwritten; rows with no
    /// nonzeros are set to zero.
    pub fn spmv_into<P: Probe>(&self, x: &[S], y: &mut [S], probe: &mut P) {
        self.spmv_into_traced(x, y, probe, &Tracer::disabled());
    }

    /// [`DaspMatrix::spmv`] with spans: returns the result vector while
    /// recording a `spmv` root span with one child per kernel.
    pub fn spmv_traced<P: Probe>(&self, x: &[S], probe: &mut P, tracer: &Tracer) -> Vec<S> {
        let mut y = vec![S::zero(); self.rows];
        self.spmv_into_traced(x, &mut y, probe, tracer);
        y
    }

    /// [`DaspMatrix::spmv_into`] with spans. Records a `spmv` root span
    /// and a `spmv.kernel.{long,medium,short13,short4,short22,short1}`
    /// child per kernel that runs; each span carries the [`Probe`] counter
    /// delta for exactly its region (diffed from
    /// [`dasp_simt::Probe::stats_snapshot`]), so the children's deltas sum
    /// to the root's. The shared short-category launch accounting is
    /// recorded inside the `short13` span. With a disabled tracer every
    /// span is inert and this *is* the plain `spmv_into` path — the probe
    /// call sequence (and thus `y` and all counters) is identical either
    /// way.
    pub fn spmv_into_traced<P: Probe>(&self, x: &[S], y: &mut [S], probe: &mut P, tracer: &Tracer) {
        assert_eq!(
            x.len(),
            self.cols,
            "x length {} != cols {}",
            x.len(),
            self.cols
        );
        assert_eq!(
            y.len(),
            self.rows,
            "y length {} != rows {}",
            y.len(),
            self.rows
        );
        let mut root = tracer.span("spmv");
        root.add_arg("rows", self.rows);
        root.add_arg("nnz", self.nnz);
        let run_before = probe.stats_snapshot();
        y.fill(S::zero());
        if self.nnz == 0 {
            return;
        }
        // Launch accounting lives here: the paper runs one kernel per row
        // *category* (plus the dependent long-rows reduction pass), so the
        // four short sub-kernels share a single launch.
        use crate::consts::{WARPS_PER_BLOCK, WARP_SIZE_LAUNCH};
        let wpb = WARPS_PER_BLOCK as u64;
        if self.long.num_groups() > 0 {
            let mut sp = root.child("spmv.kernel.long");
            sp.add_arg("groups", self.long.num_groups());
            let before = probe.stats_snapshot();
            // Algorithm 2 is one kernel: the warpVal reduction runs after a
            // grid-wide sync rather than as a second launch.
            probe.kernel_launch(self.long.num_groups().div_ceil(WARPS_PER_BLOCK) as u64, wpb);
            spmv_long(&self.long, x, y, probe);
            sp.set_stats(probe.stats_snapshot().delta(&before));
        }
        if !self.medium.rows.is_empty() {
            let mut sp = root.child("spmv.kernel.medium");
            sp.add_arg("rowblocks", self.medium.num_rowblocks());
            let before = probe.stats_snapshot();
            let warps = self
                .medium
                .num_rowblocks()
                .div_ceil(crate::consts::loop_num(self.medium.rows.len()));
            probe.kernel_launch(warps.div_ceil(WARPS_PER_BLOCK) as u64, wpb);
            spmv_medium(&self.medium, x, y, probe);
            sp.set_stats(probe.stats_snapshot().delta(&before));
        }
        let short_warps = self.short.n13_warps
            + self.short.n4_warps
            + self.short.n22_warps
            + self.short.n1.div_ceil(WARP_SIZE_LAUNCH);
        if short_warps > 0 {
            {
                let mut sp = root.child("spmv.kernel.short13");
                sp.add_arg("warps", self.short.n13_warps);
                let before = probe.stats_snapshot();
                // One launch covers all four short sub-kernels; its
                // block/warp counts land in this span's delta.
                probe.kernel_launch(short_warps.div_ceil(WARPS_PER_BLOCK) as u64, wpb);
                spmv_short13(&self.short, x, y, probe);
                sp.set_stats(probe.stats_snapshot().delta(&before));
            }
            {
                let mut sp = root.child("spmv.kernel.short4");
                sp.add_arg("warps", self.short.n4_warps);
                let before = probe.stats_snapshot();
                spmv_short4(&self.short, x, y, probe);
                sp.set_stats(probe.stats_snapshot().delta(&before));
            }
            {
                let mut sp = root.child("spmv.kernel.short22");
                sp.add_arg("warps", self.short.n22_warps);
                let before = probe.stats_snapshot();
                spmv_short22(&self.short, x, y, probe);
                sp.set_stats(probe.stats_snapshot().delta(&before));
            }
            {
                let mut sp = root.child("spmv.kernel.short1");
                sp.add_arg("rows", self.short.n1);
                let before = probe.stats_snapshot();
                spmv_short1(&self.short, x, y, probe);
                sp.set_stats(probe.stats_snapshot().delta(&before));
            }
        }
        root.set_stats(probe.stats_snapshot().delta(&run_before));
    }

    /// Multi-threaded `y = A x` across CPU cores.
    ///
    /// Exploits the same independence the GPU does: every warp owns a
    /// disjoint set of output rows (or a disjoint `warpVal` slot), so the
    /// warp ranges of each category kernel fan out over threads through
    /// [`dasp_simt::SharedSlice`]. Results are bit-identical to
    /// [`DaspMatrix::spmv`]. No instrumentation (probing would serialize
    /// the cache model); use the sequential path for measurements.
    pub fn spmv_par(&self, x: &[S]) -> Vec<S> {
        use crate::kernels::{
            medium_warps, spmv_long_phase1_range, spmv_long_phase2_range, spmv_medium_range,
            spmv_short13_range, spmv_short1_range, spmv_short22_range, spmv_short4_range,
        };
        use dasp_simt::{for_each_warp_par, NoProbe, SharedSlice};

        assert_eq!(
            x.len(),
            self.cols,
            "x length {} != cols {}",
            x.len(),
            self.cols
        );
        let mut y = vec![S::zero(); self.rows];
        if self.nnz == 0 {
            return y;
        }

        // Long rows: phase 1 over groups, barrier, phase 2 over rows.
        let n_groups = self.long.num_groups();
        let mut warp_val: Vec<S::Acc> = vec![S::acc_zero(); n_groups];
        if n_groups > 0 {
            {
                let wv = SharedSlice::new(&mut warp_val);
                for_each_warp_par(n_groups, |g| {
                    spmv_long_phase1_range(&self.long, x, &wv, g, g + 1, &mut NoProbe);
                });
            }
            let shared = SharedSlice::new(&mut y);
            for_each_warp_par(self.long.rows.len(), |r| {
                spmv_long_phase2_range(&self.long, &warp_val, &shared, r, r + 1, &mut NoProbe);
            });
        }

        // Medium and short categories: all warps are mutually independent.
        {
            let shared = SharedSlice::new(&mut y);
            let n_medium = medium_warps(&self.medium);
            for_each_warp_par(n_medium, |w| {
                spmv_medium_range(&self.medium, x, &shared, w, w + 1, &mut NoProbe);
            });
            for_each_warp_par(self.short.n13_warps, |w| {
                spmv_short13_range(&self.short, x, &shared, w, w + 1, &mut NoProbe);
            });
            for_each_warp_par(self.short.n4_warps, |w| {
                spmv_short4_range(&self.short, x, &shared, w, w + 1, &mut NoProbe);
            });
            for_each_warp_par(self.short.n22_warps, |w| {
                spmv_short22_range(&self.short, x, &shared, w, w + 1, &mut NoProbe);
            });
            // Singletons: chunk by warp-sized strides.
            let n1_warps = self.short.n1.div_ceil(32);
            for_each_warp_par(n1_warps, |w| {
                spmv_short1_range(&self.short, x, &shared, w * 32, (w + 1) * 32, &mut NoProbe);
            });
        }
        y
    }

    /// Computes `Y = A X` for several right-hand sides (column-major:
    /// `xs[j]` is the j-th input vector). Each column runs the full kernel
    /// pipeline; the converted format is reused across columns, which is
    /// the batching story the paper's preprocessing amortization implies.
    pub fn spmv_batch<P: Probe>(&self, xs: &[Vec<S>], probe: &mut P) -> Vec<Vec<S>> {
        xs.iter().map(|x| self.spmv(x, probe)).collect()
    }

    /// Convenience wrapper taking and returning `f64` regardless of the
    /// storage precision (useful for solvers; conversion costs are not
    /// probed).
    pub fn spmv_f64<P: Probe>(&self, x: &[f64], probe: &mut P) -> Vec<f64> {
        let xs: Vec<S> = x.iter().map(|&v| S::from_f64(v)).collect();
        self.spmv(&xs, probe).iter().map(|v| v.to_f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_fp16::F16;
    use dasp_simt::{CountingProbe, NoProbe};
    use dasp_sparse::{Coo, Csr};

    fn dense_mixed_matrix() -> Csr<f64> {
        // Rows spanning every category: lengths 0..=4, a few medium, one
        // long; irregular column patterns.
        let mut coo = Coo::<f64>::new(64, 600);
        let mut push_row = |r: usize, len: usize| {
            for k in 0..len {
                let c = (r * 13 + k * 7) % 600;
                coo.push(r, c, ((r + 1) as f64 * 0.1) + k as f64 * 0.01);
            }
        };
        for r in 0..40 {
            push_row(r, r % 5); // 0..=4 incl. empty rows
        }
        for r in 40..60 {
            push_row(r, 5 + r % 80);
        }
        push_row(60, 300);
        push_row(61, 257);
        push_row(62, 256);
        push_row(63, 1000 % 600 - 1); // 399: medium? no, > 256 -> long
        coo.to_csr()
    }

    fn assert_close(y: &[f64], want: &[f64], tol: f64) {
        for (i, (&a, &b)) in y.iter().zip(want).enumerate() {
            assert!(
                (a - b).abs() <= tol * b.abs().max(1.0),
                "row {i}: got {a} want {b}"
            );
        }
    }

    #[test]
    fn full_pipeline_matches_reference_fp64() {
        let csr = dense_mixed_matrix();
        let d = DaspMatrix::from_csr(&csr);
        let x: Vec<f64> = (0..600).map(|i| ((i % 17) as f64 - 8.0) * 0.1).collect();
        let y = d.spmv(&x, &mut NoProbe);
        assert_close(&y, &csr.spmv_reference(&x), 1e-9);
    }

    #[test]
    fn full_pipeline_matches_reference_fp16() {
        let csr = dense_mixed_matrix();
        let h: Csr<F16> = csr.cast();
        let d = DaspMatrix::from_csr(&h);
        let x64: Vec<f64> = (0..600).map(|i| ((i % 17) as f64 - 8.0) * 0.1).collect();
        let x: Vec<F16> = x64.iter().map(|&v| F16::from_f64(v)).collect();
        let y = d.spmv(&x, &mut NoProbe);
        // Reference computed on the rounded inputs; tolerance covers the
        // f16 result rounding plus f32 accumulation order differences.
        let hcsr: Csr<f64> = h.cast();
        let hx: Vec<f64> = x.iter().map(|v| v.to_f64()).collect();
        let want = hcsr.spmv_reference(&hx);
        for (i, (&a, &b)) in y.iter().zip(&want).enumerate() {
            let tol = 2e-2 * b.abs().max(1.0);
            assert!((a.to_f64() - b).abs() <= tol, "row {i}: got {a:?} want {b}");
        }
    }

    #[test]
    fn empty_rows_stay_zero() {
        let csr = dense_mixed_matrix();
        let d = DaspMatrix::from_csr(&csr);
        let x = vec![1.0f64; 600];
        let y = d.spmv(&x, &mut NoProbe);
        for r in 0..40 {
            if r % 5 == 0 {
                assert_eq!(y[r], 0.0, "empty row {r}");
            }
        }
    }

    #[test]
    fn probe_accounts_whole_matrix_traffic() {
        let csr = dense_mixed_matrix();
        let d = DaspMatrix::from_csr(&csr);
        let x = vec![1.0f64; 600];
        let mut probe = CountingProbe::a100();
        let _ = d.spmv(&x, &mut probe);
        let s = probe.stats();
        // Every stored (padded) element is loaded exactly once.
        let stats = d.category_stats();
        let stored = (stats.stored_long + stats.stored_medium + stats.stored_short) as u64;
        assert_eq!(s.bytes_val, stored * 8);
        assert!(s.mma_ops > 0);
        assert!(s.launches >= 3);
    }

    #[test]
    fn spmv_f64_wrapper_round_trips() {
        let csr = dense_mixed_matrix();
        let d = DaspMatrix::<f64>::from_csr(&csr);
        let x: Vec<f64> = (0..600).map(|i| (i % 3) as f64).collect();
        let via_wrapper = d.spmv_f64(&x, &mut NoProbe);
        let direct = d.spmv(&x, &mut NoProbe);
        assert_eq!(via_wrapper, direct);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_panics() {
        let csr = dense_mixed_matrix();
        let d = DaspMatrix::from_csr(&csr);
        let _ = d.spmv(&[1.0; 10], &mut NoProbe);
    }
}

#[cfg(test)]
mod par_tests {
    use super::*;
    use dasp_simt::NoProbe;
    use dasp_sparse::{Coo, Csr};

    fn mixed(seed: u64, rows: usize, cols: usize) -> Csr<f64> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coo = Coo::new(rows, cols);
        for r in 0..rows {
            let len = match rng.gen_range(0..10) {
                0 => 0,
                1..=5 => rng.gen_range(1..=4usize),
                6..=8 => rng.gen_range(5..=200),
                _ => rng.gen_range(257..=500),
            }
            .min(cols);
            let mut cs: Vec<usize> = Vec::new();
            while cs.len() < len {
                let c = rng.gen_range(0..cols);
                if !cs.contains(&c) {
                    cs.push(c);
                }
            }
            for c in cs {
                coo.push(r, c, rng.gen_range(-1.0..1.0));
            }
        }
        coo.to_csr()
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        for seed in 0..4 {
            let csr = mixed(seed, 700, 800);
            let d = DaspMatrix::from_csr(&csr);
            let x = dasp_matgen::dense_vector(csr.cols, seed);
            let seq = d.spmv(&x, &mut NoProbe);
            let par = d.spmv_par(&x);
            assert_eq!(seq, par, "seed {seed}");
        }
    }

    #[test]
    fn parallel_on_large_matrix() {
        // Enough warps (>= 64 per category) to actually engage the thread
        // pool rather than the sequential fallback.
        let csr = mixed(99, 20_000, 4000);
        let d = DaspMatrix::from_csr(&csr);
        let x = dasp_matgen::dense_vector(csr.cols, 7);
        let seq = d.spmv(&x, &mut NoProbe);
        let par = d.spmv_par(&x);
        assert_eq!(seq, par);
    }

    #[test]
    fn batch_equals_columnwise_spmv() {
        let csr = mixed(5, 300, 400);
        let d = DaspMatrix::from_csr(&csr);
        let xs: Vec<Vec<f64>> = (0..4)
            .map(|j| dasp_matgen::dense_vector(csr.cols, j))
            .collect();
        let batch = d.spmv_batch(&xs, &mut NoProbe);
        for (j, x) in xs.iter().enumerate() {
            assert_eq!(batch[j], d.spmv(x, &mut NoProbe), "column {j}");
        }
    }

    #[test]
    fn parallel_handles_empty_matrix() {
        let d = DaspMatrix::from_csr(&Csr::<f64>::empty(5, 5));
        assert_eq!(d.spmv_par(&[0.0; 5]), vec![0.0; 5]);
    }
}

//! The SpMV entry point: dispatches all category kernels.

#![allow(clippy::needless_range_loop)]

use dasp_fp16::Scalar;
use dasp_simt::{Executor, NoProbe, ParExecutor, ShardableProbe, SharedSlice};
use dasp_trace::Tracer;

use crate::format::DaspMatrix;
use crate::kernels::{
    short1_warps, spmv_long_with, spmv_medium_with, spmv_short13_with, spmv_short1_with,
    spmv_short22_with, spmv_short4_with,
};

impl<S: Scalar> DaspMatrix<S> {
    /// Computes `y = A x` with the DASP kernels, threading `probe` through
    /// every memory access and arithmetic issue. Runs under the
    /// process-default executor ([`Executor::from_env`]).
    ///
    /// `x.len()` must equal the matrix's column count. Rows with no
    /// nonzeros produce `0`. Results are rounded to storage precision, as
    /// the GPU kernels write `y` in the matrix's element type.
    pub fn spmv<P: ShardableProbe>(&self, x: &[S], probe: &mut P) -> Vec<S> {
        self.spmv_with(x, probe, &Executor::from_env())
    }

    /// [`DaspMatrix::spmv`] under an explicit executor.
    pub fn spmv_with<P: ShardableProbe>(&self, x: &[S], probe: &mut P, exec: &Executor) -> Vec<S> {
        let mut y = vec![S::zero(); self.rows];
        self.spmv_into_with(x, &mut y, probe, exec);
        y
    }

    /// Computes `y = A x` into a caller-provided buffer (no allocation):
    /// the solver-loop API. `y` is fully overwritten; rows with no
    /// nonzeros are set to zero.
    pub fn spmv_into<P: ShardableProbe>(&self, x: &[S], y: &mut [S], probe: &mut P) {
        self.spmv_into_with(x, y, probe, &Executor::from_env());
    }

    /// [`DaspMatrix::spmv_into`] under an explicit executor.
    pub fn spmv_into_with<P: ShardableProbe>(
        &self,
        x: &[S],
        y: &mut [S],
        probe: &mut P,
        exec: &Executor,
    ) {
        self.spmv_into_traced_with(x, y, probe, &Tracer::disabled(), exec);
    }

    /// [`DaspMatrix::spmv`] with spans: returns the result vector while
    /// recording a `spmv` root span with one child per kernel.
    pub fn spmv_traced<P: ShardableProbe>(
        &self,
        x: &[S],
        probe: &mut P,
        tracer: &Tracer,
    ) -> Vec<S> {
        self.spmv_traced_with(x, probe, tracer, &Executor::from_env())
    }

    /// [`DaspMatrix::spmv_traced`] under an explicit executor.
    pub fn spmv_traced_with<P: ShardableProbe>(
        &self,
        x: &[S],
        probe: &mut P,
        tracer: &Tracer,
        exec: &Executor,
    ) -> Vec<S> {
        let mut y = vec![S::zero(); self.rows];
        self.spmv_into_traced_with(x, &mut y, probe, tracer, exec);
        y
    }

    /// [`DaspMatrix::spmv_into_traced_with`] under the process-default
    /// executor.
    pub fn spmv_into_traced<P: ShardableProbe>(
        &self,
        x: &[S],
        y: &mut [S],
        probe: &mut P,
        tracer: &Tracer,
    ) {
        self.spmv_into_traced_with(x, y, probe, tracer, &Executor::from_env());
    }

    /// [`DaspMatrix::spmv_into`] with spans, under an explicit executor —
    /// the single dispatch every other SpMV entry point funnels through.
    /// Records a `spmv` root span and a
    /// `spmv.kernel.{long,medium,short13,short4,short22,short1}`
    /// child per kernel that runs; each span carries the probe counter
    /// delta for exactly its region (diffed from
    /// [`dasp_simt::Probe::stats_snapshot`]; under a parallel executor the
    /// shard merge completes inside each kernel, so the deltas still
    /// attribute correctly), so the children's deltas sum to the root's.
    /// The shared short-category launch accounting is recorded inside the
    /// `short13` span. With a disabled tracer every span is inert and this
    /// *is* the plain `spmv_into_with` path — the probe call sequence (and
    /// thus `y` and all counters) is identical either way.
    ///
    /// When fleet-wide sanitizing is on (`DASP_SANITIZE`, see
    /// [`dasp_sanitize::enabled`]) the run is transparently re-dispatched
    /// through a [`dasp_sanitize::SanitizeProbe`] wrapping `probe`: `y` is
    /// bit-identical, order-independent counters merge back exactly, and
    /// any diagnostics are published to the global
    /// [`dasp_sanitize::SanitizeReport`] (aborting afterwards in `abort`
    /// mode). A probe that is already sanitizing is never double-wrapped.
    pub fn spmv_into_traced_with<P: ShardableProbe>(
        &self,
        x: &[S],
        y: &mut [S],
        probe: &mut P,
        tracer: &Tracer,
        exec: &Executor,
    ) {
        if dasp_sanitize::enabled() && !probe.sanitizing() {
            let mut sp = dasp_sanitize::SanitizeProbe::forked(probe);
            self.spmv_into_traced_with_impl(x, y, &mut sp, tracer, exec);
            dasp_sanitize::fleet_finish("spmv", sp, probe);
        } else {
            self.spmv_into_traced_with_impl(x, y, probe, tracer, exec);
        }
    }

    fn spmv_into_traced_with_impl<P: ShardableProbe>(
        &self,
        x: &[S],
        y: &mut [S],
        probe: &mut P,
        tracer: &Tracer,
        exec: &Executor,
    ) {
        assert_eq!(
            x.len(),
            self.cols,
            "x length {} != cols {}",
            x.len(),
            self.cols
        );
        assert_eq!(
            y.len(),
            self.rows,
            "y length {} != rows {}",
            y.len(),
            self.rows
        );
        let mut root = tracer.span("spmv");
        root.add_arg("rows", self.rows);
        root.add_arg("nnz", self.nnz);
        let run_before = probe.stats_snapshot();
        y.fill(S::zero());
        if self.nnz == 0 {
            // Still close the root span with its (empty) counter delta:
            // zero-nnz traces would otherwise carry no stats at all.
            root.set_stats(probe.stats_snapshot().delta(&run_before));
            return;
        }
        // Launch accounting lives here: the paper runs one kernel per row
        // *category* (plus the dependent long-rows reduction pass), so the
        // four short sub-kernels share a single launch.
        use crate::consts::WARPS_PER_BLOCK;
        let wpb = WARPS_PER_BLOCK as u64;
        if self.long.num_groups() > 0 {
            let mut sp = root.child("spmv.kernel.long");
            sp.add_arg("groups", self.long.num_groups());
            let before = probe.stats_snapshot();
            // Algorithm 2 is one kernel: the warpVal reduction runs after a
            // grid-wide sync rather than as a second launch.
            probe.kernel_launch(self.long.num_groups().div_ceil(WARPS_PER_BLOCK) as u64, wpb);
            spmv_long_with(&self.long, x, y, probe, exec);
            sp.set_stats(probe.stats_snapshot().delta(&before));
        }
        if !self.medium.rows.is_empty() {
            let mut sp = root.child("spmv.kernel.medium");
            sp.add_arg("rowblocks", self.medium.num_rowblocks());
            let before = probe.stats_snapshot();
            let warps = self
                .medium
                .num_rowblocks()
                .div_ceil(crate::consts::loop_num(self.medium.rows.len()));
            probe.kernel_launch(warps.div_ceil(WARPS_PER_BLOCK) as u64, wpb);
            spmv_medium_with(&self.medium, x, y, probe, exec);
            sp.set_stats(probe.stats_snapshot().delta(&before));
        }
        let short_warps = self.short.n13_warps
            + self.short.n4_warps
            + self.short.n22_warps
            + short1_warps(&self.short);
        if short_warps > 0 {
            {
                let mut sp = root.child("spmv.kernel.short13");
                sp.add_arg("warps", self.short.n13_warps);
                let before = probe.stats_snapshot();
                // One launch covers all four short sub-kernels; its
                // block/warp counts land in this span's delta.
                probe.kernel_launch(short_warps.div_ceil(WARPS_PER_BLOCK) as u64, wpb);
                spmv_short13_with(&self.short, x, y, probe, exec);
                sp.set_stats(probe.stats_snapshot().delta(&before));
            }
            {
                let mut sp = root.child("spmv.kernel.short4");
                sp.add_arg("warps", self.short.n4_warps);
                let before = probe.stats_snapshot();
                spmv_short4_with(&self.short, x, y, probe, exec);
                sp.set_stats(probe.stats_snapshot().delta(&before));
            }
            {
                let mut sp = root.child("spmv.kernel.short22");
                sp.add_arg("warps", self.short.n22_warps);
                let before = probe.stats_snapshot();
                spmv_short22_with(&self.short, x, y, probe, exec);
                sp.set_stats(probe.stats_snapshot().delta(&before));
            }
            {
                let mut sp = root.child("spmv.kernel.short1");
                sp.add_arg("rows", self.short.n1);
                let before = probe.stats_snapshot();
                spmv_short1_with(&self.short, x, y, probe, exec);
                sp.set_stats(probe.stats_snapshot().delta(&before));
            }
        }
        root.set_stats(probe.stats_snapshot().delta(&run_before));
    }

    /// Multi-threaded `y = A x` across CPU cores: [`DaspMatrix::spmv_with`]
    /// on the default [`ParExecutor`] with no instrumentation.
    ///
    /// Exploits the same independence the GPU does: every warp owns a
    /// disjoint set of output rows (or a disjoint `warpVal` slot), so warp
    /// bodies fan out over threads through [`dasp_simt::SharedSlice`].
    /// Results are bit-identical to [`DaspMatrix::spmv`]. For
    /// *instrumented* parallel runs, pass a probe to
    /// [`DaspMatrix::spmv_with`] with [`Executor::par`] instead.
    pub fn spmv_par(&self, x: &[S]) -> Vec<S> {
        self.spmv_with(x, &mut NoProbe, &Executor::par())
    }

    /// Computes `Y = A X` for several right-hand sides (column-major:
    /// `xs[j]` is the j-th input vector). Batches of two or more columns
    /// — any count, there is no width cap — route through the SpMM
    /// kernels ([`DaspMatrix::spmm`]): the columns pack into
    /// [`dasp_sparse::DenseMat`] panels of up to 8 and the A-resident
    /// sweep streams each A fragment and its index bytes **once for the
    /// whole batch**, however many panels that is. Every output column
    /// is bit-identical to the single-vector [`DaspMatrix::spmv`] of
    /// that column, so callers observe the loop semantics at panel
    /// traffic cost. Single-column (and empty) batches fall back to the
    /// plain SpMV path.
    pub fn spmv_batch<P: ShardableProbe>(&self, xs: &[Vec<S>], probe: &mut P) -> Vec<Vec<S>> {
        if xs.len() >= 2 {
            let b = dasp_sparse::DenseMat::from_columns(xs);
            let y = self.spmm(&b, probe);
            return (0..xs.len()).map(|j| y.column(j)).collect();
        }
        let mut out: Vec<Vec<S>> = xs.iter().map(|_| vec![S::zero(); self.rows]).collect();
        for (x, y) in xs.iter().zip(out.iter_mut()) {
            self.spmv_into(x, y, probe);
        }
        out
    }

    /// [`DaspMatrix::spmv_batch`] under an explicit [`ParExecutor`].
    /// Batches of two or more columns run the SpMM kernels with the panel
    /// *warps* fanned out over the executor's threads (probe shards merge
    /// in chunk order, so order-independent counters equal
    /// [`DaspMatrix::spmv_batch`]'s exactly and every output column stays
    /// bit-identical to its single-vector SpMV). A single column fans out
    /// the one column's own kernel warps.
    ///
    /// `par.seq_threshold()` applies to the warp count of each kernel;
    /// use [`ParExecutor::with_seq_threshold`]`(0)` to force threading
    /// even for tiny grids.
    pub fn spmv_batch_par<P: ShardableProbe>(
        &self,
        xs: &[Vec<S>],
        probe: &mut P,
        par: &ParExecutor,
    ) -> Vec<Vec<S>> {
        if xs.len() >= 2 {
            let b = dasp_sparse::DenseMat::from_columns(xs);
            let y = self.spmm_with(&b, probe, &Executor::Par(*par));
            return (0..xs.len()).map(|j| y.column(j)).collect();
        }
        // Slots start as empty (non-allocating) vectors: SharedSlice::write
        // replaces without dropping, so the placeholder must own nothing.
        let mut out: Vec<Vec<S>> = xs.iter().map(|_| Vec::new()).collect();
        {
            let slots = SharedSlice::new(&mut out);
            par.run(xs.len(), probe, |j, p| {
                let mut y = vec![S::zero(); self.rows];
                self.spmv_into_with(&xs[j], &mut y, p, &Executor::seq());
                slots.write(j, y);
            });
        }
        out
    }

    /// [`DaspMatrix::spmv_batch`] into caller-owned scratch: the hot-path
    /// variant for request servers and solver loops that run many batches
    /// through one pair of long-lived buffers. `b` and `y` are reshaped
    /// in place ([`dasp_sparse::DenseMat::reset`]) — after warm-up no
    /// panel storage is allocated per call, only grown when a batch
    /// exceeds every previous width. On return `y` holds the product;
    /// column `j` of `y` is bit-identical to `spmv(xs[j])`.
    ///
    /// Width >= 2 routes through the SpMM panel sweep exactly as
    /// [`DaspMatrix::spmv_batch`]; a single column runs the plain SpMV
    /// kernels writing straight into `y`'s (degenerate, stride-1) panel
    /// storage, so solo requests keep their single-vector counter
    /// profile.
    pub fn spmv_batch_into_traced_with<P: ShardableProbe>(
        &self,
        xs: &[&[S]],
        b: &mut dasp_sparse::DenseMat<S>,
        y: &mut dasp_sparse::DenseMat<S>,
        probe: &mut P,
        tracer: &Tracer,
        exec: &Executor,
    ) {
        y.reset(self.rows, xs.len());
        if xs.len() == 1 {
            self.spmv_into_traced_with(xs[0], y.data_mut(), probe, tracer, exec);
            return;
        }
        b.reset(self.cols, xs.len());
        for (j, x) in xs.iter().enumerate() {
            b.set_column(j, x);
        }
        self.spmm_into_traced_with(b, y, probe, tracer, exec);
    }

    /// Convenience wrapper taking and returning `f64` regardless of the
    /// storage precision (useful for solvers; conversion costs are not
    /// probed).
    pub fn spmv_f64<P: ShardableProbe>(&self, x: &[f64], probe: &mut P) -> Vec<f64> {
        let xs: Vec<S> = x.iter().map(|&v| S::from_f64(v)).collect();
        self.spmv(&xs, probe).iter().map(|v| v.to_f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_fp16::F16;
    use dasp_simt::{CountingProbe, NoProbe};
    use dasp_sparse::{Coo, Csr};

    fn dense_mixed_matrix() -> Csr<f64> {
        // Rows spanning every category: lengths 0..=4, a few medium, one
        // long; irregular column patterns.
        let mut coo = Coo::<f64>::new(64, 600);
        let mut push_row = |r: usize, len: usize| {
            for k in 0..len {
                let c = (r * 13 + k * 7) % 600;
                coo.push(r, c, ((r + 1) as f64 * 0.1) + k as f64 * 0.01);
            }
        };
        for r in 0..40 {
            push_row(r, r % 5); // 0..=4 incl. empty rows
        }
        for r in 40..60 {
            push_row(r, 5 + r % 80);
        }
        push_row(60, 300);
        push_row(61, 257);
        push_row(62, 256);
        push_row(63, 1000 % 600 - 1); // 399: medium? no, > 256 -> long
        coo.to_csr()
    }

    fn assert_close(y: &[f64], want: &[f64], tol: f64) {
        for (i, (&a, &b)) in y.iter().zip(want).enumerate() {
            assert!(
                (a - b).abs() <= tol * b.abs().max(1.0),
                "row {i}: got {a} want {b}"
            );
        }
    }

    #[test]
    fn full_pipeline_matches_reference_fp64() {
        let csr = dense_mixed_matrix();
        let d = DaspMatrix::from_csr(&csr);
        let x: Vec<f64> = (0..600).map(|i| ((i % 17) as f64 - 8.0) * 0.1).collect();
        let y = d.spmv(&x, &mut NoProbe);
        assert_close(&y, &csr.spmv_reference(&x), 1e-9);
    }

    #[test]
    fn full_pipeline_matches_reference_fp16() {
        let csr = dense_mixed_matrix();
        let h: Csr<F16> = csr.cast();
        let d = DaspMatrix::from_csr(&h);
        let x64: Vec<f64> = (0..600).map(|i| ((i % 17) as f64 - 8.0) * 0.1).collect();
        let x: Vec<F16> = x64.iter().map(|&v| F16::from_f64(v)).collect();
        let y = d.spmv(&x, &mut NoProbe);
        // Reference computed on the rounded inputs; tolerance covers the
        // f16 result rounding plus f32 accumulation order differences.
        let hcsr: Csr<f64> = h.cast();
        let hx: Vec<f64> = x.iter().map(|v| v.to_f64()).collect();
        let want = hcsr.spmv_reference(&hx);
        for (i, (&a, &b)) in y.iter().zip(&want).enumerate() {
            let tol = 2e-2 * b.abs().max(1.0);
            assert!((a.to_f64() - b).abs() <= tol, "row {i}: got {a:?} want {b}");
        }
    }

    #[test]
    fn empty_rows_stay_zero() {
        let csr = dense_mixed_matrix();
        let d = DaspMatrix::from_csr(&csr);
        let x = vec![1.0f64; 600];
        let y = d.spmv(&x, &mut NoProbe);
        for r in 0..40 {
            if r % 5 == 0 {
                assert_eq!(y[r], 0.0, "empty row {r}");
            }
        }
    }

    #[test]
    fn probe_accounts_whole_matrix_traffic() {
        let csr = dense_mixed_matrix();
        let d = DaspMatrix::from_csr(&csr);
        let x = vec![1.0f64; 600];
        let mut probe = CountingProbe::a100();
        let _ = d.spmv(&x, &mut probe);
        let s = probe.stats();
        // Every stored (padded) element is loaded exactly once.
        let stats = d.category_stats();
        let stored = (stats.stored_long + stats.stored_medium + stats.stored_short) as u64;
        assert_eq!(s.bytes_val, stored * 8);
        assert!(s.mma_ops > 0);
        assert!(s.launches >= 3);
    }

    #[test]
    fn spmv_f64_wrapper_round_trips() {
        let csr = dense_mixed_matrix();
        let d = DaspMatrix::<f64>::from_csr(&csr);
        let x: Vec<f64> = (0..600).map(|i| (i % 3) as f64).collect();
        let via_wrapper = d.spmv_f64(&x, &mut NoProbe);
        let direct = d.spmv(&x, &mut NoProbe);
        assert_eq!(via_wrapper, direct);
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_x_length_panics() {
        let csr = dense_mixed_matrix();
        let d = DaspMatrix::from_csr(&csr);
        let _ = d.spmv(&[1.0; 10], &mut NoProbe);
    }
}

#[cfg(test)]
mod par_tests {
    use super::*;
    use dasp_simt::NoProbe;
    use dasp_sparse::{Coo, Csr};

    fn mixed(seed: u64, rows: usize, cols: usize) -> Csr<f64> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coo = Coo::new(rows, cols);
        for r in 0..rows {
            let len = match rng.gen_range(0..10) {
                0 => 0,
                1..=5 => rng.gen_range(1..=4usize),
                6..=8 => rng.gen_range(5..=200),
                _ => rng.gen_range(257..=500),
            }
            .min(cols);
            let mut cs: Vec<usize> = Vec::new();
            while cs.len() < len {
                let c = rng.gen_range(0..cols);
                if !cs.contains(&c) {
                    cs.push(c);
                }
            }
            for c in cs {
                coo.push(r, c, rng.gen_range(-1.0..1.0));
            }
        }
        coo.to_csr()
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        for seed in 0..4 {
            let csr = mixed(seed, 700, 800);
            let d = DaspMatrix::from_csr(&csr);
            let x = dasp_matgen::dense_vector(csr.cols, seed);
            let seq = d.spmv(&x, &mut NoProbe);
            let par = d.spmv_par(&x);
            assert_eq!(seq, par, "seed {seed}");
        }
    }

    #[test]
    fn parallel_on_large_matrix() {
        // Enough warps (>= 64 per category) to actually engage the thread
        // pool rather than the sequential fallback.
        let csr = mixed(99, 20_000, 4000);
        let d = DaspMatrix::from_csr(&csr);
        let x = dasp_matgen::dense_vector(csr.cols, 7);
        let seq = d.spmv(&x, &mut NoProbe);
        let par = d.spmv_par(&x);
        assert_eq!(seq, par);
    }

    #[test]
    fn batch_equals_columnwise_spmv() {
        let csr = mixed(5, 300, 400);
        let d = DaspMatrix::from_csr(&csr);
        let xs: Vec<Vec<f64>> = (0..4)
            .map(|j| dasp_matgen::dense_vector(csr.cols, j))
            .collect();
        let batch = d.spmv_batch(&xs, &mut NoProbe);
        for (j, x) in xs.iter().enumerate() {
            assert_eq!(batch[j], d.spmv(x, &mut NoProbe), "column {j}");
        }
    }

    #[test]
    fn large_batch_spans_many_panels_and_streams_a_once() {
        use dasp_simt::CountingProbe;
        let csr = mixed(6, 200, 250);
        let d = DaspMatrix::from_csr(&csr);
        // 27 columns -> 4 panels, the last masked to width 3.
        let xs: Vec<Vec<f64>> = (0..27)
            .map(|j| dasp_matgen::dense_vector(csr.cols, 100 + j))
            .collect();
        let mut probe = CountingProbe::a100();
        let batch = d.spmv_batch(&xs, &mut probe);
        for (j, x) in xs.iter().enumerate() {
            assert_eq!(batch[j], d.spmv(x, &mut NoProbe), "column {j}");
        }
        let mut one = CountingProbe::a100();
        d.spmv(&xs[0], &mut one);
        // The whole 27-column batch pays the single-vector A traffic.
        assert_eq!(probe.stats().bytes_val, one.stats().bytes_val);
        assert_eq!(probe.stats().bytes_idx, one.stats().bytes_idx);
    }

    #[test]
    fn batch_into_reuses_scratch_and_matches_spmv() {
        use dasp_simt::Executor;
        use dasp_sparse::DenseMat;
        use dasp_trace::Tracer;
        let csr = mixed(5, 300, 400);
        let d = DaspMatrix::from_csr(&csr);
        let mut b = DenseMat::<f64>::zeros(0, 0);
        let mut y = DenseMat::<f64>::zeros(0, 0);
        let tracer = Tracer::disabled();
        // Widths 7, then 3, then 1, through the same scratch pair; the
        // first call sizes the buffers, later (smaller) calls must not
        // reallocate.
        let mut ptrs = (std::ptr::null(), std::ptr::null());
        for (i, w) in [7usize, 3, 1].into_iter().enumerate() {
            let xs: Vec<Vec<f64>> = (0..w)
                .map(|j| dasp_matgen::dense_vector(csr.cols, 40 + (i * 8 + j) as u64))
                .collect();
            let refs: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
            d.spmv_batch_into_traced_with(
                &refs,
                &mut b,
                &mut y,
                &mut NoProbe,
                &tracer,
                &Executor::seq(),
            );
            assert_eq!((y.rows(), y.cols()), (d.rows, w));
            for (j, x) in xs.iter().enumerate() {
                assert_eq!(y.column(j), d.spmv(x, &mut NoProbe), "width {w} col {j}");
            }
            if i == 0 {
                ptrs = (b.data().as_ptr(), y.data().as_ptr());
            } else {
                assert_eq!(ptrs.0, b.data().as_ptr(), "b realloc at width {w}");
                assert_eq!(ptrs.1, y.data().as_ptr(), "y realloc at width {w}");
            }
        }
    }

    #[test]
    fn batch_into_matches_spmv_batch_across_executors() {
        use dasp_simt::Executor;
        use dasp_sparse::DenseMat;
        use dasp_trace::Tracer;
        let csr = mixed(7, 500, 600);
        let d = DaspMatrix::from_csr(&csr);
        let xs: Vec<Vec<f64>> = (0..5)
            .map(|j| dasp_matgen::dense_vector(csr.cols, j))
            .collect();
        let want = d.spmv_batch(&xs, &mut NoProbe);
        for exec in [Executor::seq(), Executor::par()] {
            let refs: Vec<&[f64]> = xs.iter().map(|v| v.as_slice()).collect();
            let mut b = DenseMat::zeros(0, 0);
            let mut y = DenseMat::zeros(0, 0);
            d.spmv_batch_into_traced_with(
                &refs,
                &mut b,
                &mut y,
                &mut NoProbe,
                &Tracer::disabled(),
                &exec,
            );
            for (j, w) in want.iter().enumerate() {
                assert_eq!(&y.column(j), w, "{} col {j}", exec.name());
            }
        }
    }

    #[test]
    fn parallel_handles_empty_matrix() {
        let d = DaspMatrix::from_csr(&Csr::<f64>::empty(5, 5));
        assert_eq!(d.spmv_par(&[0.0; 5]), vec![0.0; 5]);
    }

    #[test]
    fn instrumented_parallel_counters_match_sequential() {
        use dasp_simt::{CountingProbe, Executor};
        let csr = mixed(11, 2_000, 1_500);
        let d = DaspMatrix::from_csr(&csr);
        let x = dasp_matgen::dense_vector(csr.cols, 3);
        let mut seq_probe = CountingProbe::a100();
        let seq = d.spmv_with(&x, &mut seq_probe, &Executor::seq());
        let mut par_probe = CountingProbe::a100();
        let par = d.spmv_with(&x, &mut par_probe, &Executor::par());
        assert_eq!(seq, par);
        assert_eq!(
            seq_probe.stats().order_independent(),
            par_probe.stats().order_independent()
        );
        assert_eq!(
            par_probe.stats().x_hits + par_probe.stats().x_misses,
            par_probe.stats().x_requests
        );
    }

    #[test]
    fn batch_par_fans_columns_and_merges_counters() {
        use dasp_simt::{CountingProbe, ParExecutor};
        let csr = mixed(5, 300, 400);
        let d = DaspMatrix::from_csr(&csr);
        let xs: Vec<Vec<f64>> = (0..4)
            .map(|j| dasp_matgen::dense_vector(csr.cols, j))
            .collect();
        let mut seq_probe = CountingProbe::a100();
        let batch = d.spmv_batch(&xs, &mut seq_probe);
        let mut par_probe = CountingProbe::a100();
        // threshold 0: thread even four columns.
        let par = ParExecutor::new().with_seq_threshold(0);
        let batch_par = d.spmv_batch_par(&xs, &mut par_probe, &par);
        assert_eq!(batch, batch_par);
        assert_eq!(
            seq_probe.stats().order_independent(),
            par_probe.stats().order_independent()
        );
    }
}

//! Tunable parameters and fixed geometry of the DASP algorithm.

pub use dasp_simt::mma::{MMA_K, MMA_M, MMA_N};

/// Elements per MMA block (`MMA_M * MMA_K` = 32).
pub const BLOCK_ELEMS: usize = MMA_M * MMA_K;

/// Elements per long-row group (`2 * MMA_M * MMA_K` = 64): each warp
/// computes one group with two MMA issues (paper §3.2).
pub const GROUP_ELEMS: usize = 2 * BLOCK_ELEMS;

/// Lanes per warp, used for launch-geometry arithmetic.
pub const WARP_SIZE_LAUNCH: usize = 32;

/// Warps per thread block in the long-rows kernel; together with
/// [`GROUP_ELEMS`] this makes `MAX_LEN` "exactly the workload of a thread
/// block" (paper §3.3.1).
pub const WARPS_PER_BLOCK: usize = 4;

/// Algorithm parameters (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaspParams {
    /// Maximum length of a medium row; rows longer than this are "long".
    /// Paper value: 256 (= `WARPS_PER_BLOCK * GROUP_ELEMS`).
    pub max_len: usize,
    /// Fill threshold above which an 8x4 window of a medium row-block is
    /// stored as a zero-padded regular block. Paper value: 0.75.
    pub threshold: f64,
    /// Whether short rows are pieced together (1&3, 2&2) as in the paper,
    /// or zero-padded straight into length-4 blocks (the ablation of
    /// §3.3.3's data-transfer claim). Paper behaviour: `true`.
    pub short_piecing: bool,
    /// Whether the medium stable sort breaks length ties by a minhash
    /// row-similarity signature (Acc-SpMM-style), packing rows with
    /// overlapping column sets into the same 8-row blocks so their MMA
    /// windows gather overlapping x/B lines. Off by default; the plan
    /// carries the flag, and results stay bit-identical either way (the
    /// format's geometry depends only on the sorted length sequence, so
    /// `fill_rate` is provably unchanged — this is an x-locality pass).
    pub reorder: bool,
}

impl Default for DaspParams {
    fn default() -> Self {
        DaspParams {
            max_len: 256,
            threshold: 0.75,
            short_piecing: true,
            reorder: false,
        }
    }
}

/// The paper's `LOOP_NUM` schedule (§3.3.2): row-blocks computed per warp in
/// the medium-rows kernel, stepped up with the medium-row count so large
/// matrices launch fewer, fatter warps.
pub fn loop_num(row_medium: usize) -> usize {
    if row_medium < 59_990 {
        1
    } else if row_medium < 400_000 {
        2
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_paper() {
        assert_eq!(MMA_M, 8);
        assert_eq!(MMA_N, 8);
        assert_eq!(MMA_K, 4);
        assert_eq!(BLOCK_ELEMS, 32);
        assert_eq!(GROUP_ELEMS, 64);
        // MAX_LEN is exactly one thread block's workload.
        assert_eq!(DaspParams::default().max_len, WARPS_PER_BLOCK * GROUP_ELEMS);
    }

    #[test]
    fn loop_num_thresholds() {
        assert_eq!(loop_num(0), 1);
        assert_eq!(loop_num(59_989), 1);
        assert_eq!(loop_num(59_990), 2);
        assert_eq!(loop_num(399_999), 2);
        assert_eq!(loop_num(400_000), 4);
        assert_eq!(loop_num(10_000_000), 4);
    }
}

//! Interpreter-throughput microbench: warp-ops/sec per DASP kernel.
//!
//! The SIMT interpreter's cost has two parts — the lane math itself and
//! the probe hooks threaded through it. This microbench isolates each
//! DASP kernel on a synthetic matrix that dispatches *only* that kernel
//! and times the run twice: under [`NoProbe`] (pure lane math) and under
//! [`CountingProbe`] (lane math + the full accounting boundary). The
//! difference is the interpreter-overhead share the batched-probe
//! refactor drives down, reported per kernel as simulated warps per
//! wall-clock second and surfaced by `dasp-bench record` as the
//! "interpreter overhead" row under the call-tree hot table.

use dasp_core::DaspMatrix;
use dasp_simt::{CountingProbe, Executor, NoProbe};
use dasp_sparse::{Coo, Csr};

/// One kernel's interpreter-throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpRecord {
    /// Kernel name (`long`, `medium`, `short4`, `short13`, `short22`,
    /// `short1`).
    pub kernel: String,
    /// Simulated warps per SpMV launch sweep (from the counting run).
    pub warps: u64,
    /// Timed repetitions per probe variant.
    pub reps: u64,
    /// Best-of-reps wall time under [`NoProbe`], microseconds.
    pub noprobe_us: f64,
    /// Best-of-reps wall time under [`CountingProbe`], microseconds.
    pub counting_us: f64,
}

impl InterpRecord {
    /// Simulated warps per second, pure lane math.
    pub fn warps_per_sec_noprobe(&self) -> f64 {
        self.warps as f64 / (self.noprobe_us.max(1e-3) * 1e-6)
    }

    /// Simulated warps per second with the counting probe attached.
    pub fn warps_per_sec_counting(&self) -> f64 {
        self.warps as f64 / (self.counting_us.max(1e-3) * 1e-6)
    }

    /// Share of the instrumented run spent in probe hooks rather than
    /// lane math (0..=1; clamped, since noise can make the instrumented
    /// run measure faster on tiny kernels).
    pub fn probe_share(&self) -> f64 {
        ((self.counting_us - self.noprobe_us) / self.counting_us.max(1e-3)).clamp(0.0, 1.0)
    }
}

/// Aggregate probe-hook share across records: total probe time over
/// total instrumented time (0..=1), the single number the hot-table row
/// reports.
pub fn probe_overhead_share(records: &[InterpRecord]) -> f64 {
    let total_counting: f64 = records.iter().map(|r| r.counting_us).sum();
    let total_noprobe: f64 = records.iter().map(|r| r.noprobe_us).sum();
    if total_counting <= 0.0 {
        return 0.0;
    }
    ((total_counting - total_noprobe) / total_counting).clamp(0.0, 1.0)
}

/// A matrix whose rows all have the given repeating length pattern, with
/// deterministic column scatter — each entry in `lens` produces rows of
/// exactly that many nonzeros, steering the DASP planner to one kernel.
fn patterned(rows: usize, cols: usize, lens: &[usize]) -> Csr<f64> {
    let mut coo = Coo::new(rows, cols);
    for r in 0..rows {
        let len = lens[r % lens.len()];
        for k in 0..len {
            // Strided scatter keeps the x gathers non-trivial for the
            // cache model without needing a RNG.
            let c = (r * 37 + k * 101) % cols;
            coo.push(r, c, 0.25 + ((r + k) % 13) as f64 * 0.0625);
        }
    }
    coo.to_csr()
}

/// The per-kernel synthetic matrices, all ~65k nonzeros so the per-warp
/// throughput numbers are comparable across kernels.
fn kernel_matrices() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        ("long", patterned(64, 4096, &[1024])),
        ("medium", patterned(1024, 4096, &[64])),
        ("short4", patterned(16384, 4096, &[4])),
        ("short13", patterned(32768, 4096, &[1, 3])),
        ("short22", patterned(32768, 4096, &[2])),
        ("short1", patterned(65536, 4096, &[1])),
    ]
}

/// Runs the microbench: for each kernel-isolating matrix, `reps` timed
/// SpMV sweeps under `NoProbe` and under `CountingProbe` (best-of-reps,
/// one untimed warmup each), on the sequential executor so the numbers
/// measure interpreter throughput rather than thread scheduling.
pub fn run_interp_bench(reps: usize) -> Vec<InterpRecord> {
    let exec = Executor::seq();
    let reps = reps.max(1);
    kernel_matrices()
        .into_iter()
        .map(|(name, csr)| {
            let d = DaspMatrix::from_csr(&csr);
            let x: Vec<f64> = (0..csr.cols)
                .map(|i| 0.5 + (i % 7) as f64 * 0.125)
                .collect();

            let _ = d.spmv_with(&x, &mut NoProbe, &exec);
            let mut noprobe_us = f64::INFINITY;
            for _ in 0..reps {
                let t0 = std::time::Instant::now();
                let _ = d.spmv_with(&x, &mut NoProbe, &exec);
                noprobe_us = noprobe_us.min(t0.elapsed().as_secs_f64() * 1e6);
            }

            let mut warmup = CountingProbe::a100();
            let _ = d.spmv_with(&x, &mut warmup, &exec);
            let mut counting_us = f64::INFINITY;
            let mut warps = 0;
            for _ in 0..reps {
                let mut probe = CountingProbe::a100();
                let t0 = std::time::Instant::now();
                let _ = d.spmv_with(&x, &mut probe, &exec);
                counting_us = counting_us.min(t0.elapsed().as_secs_f64() * 1e6);
                warps = probe.stats().warps;
            }

            InterpRecord {
                kernel: name.to_string(),
                warps,
                reps: reps as u64,
                noprobe_us,
                counting_us,
            }
        })
        .collect()
}

/// Renders the per-kernel throughput table plus the aggregate
/// "interpreter overhead" row appended under the call-tree hot table.
pub fn render_interp_table(records: &[InterpRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8}  {:>8}  {:>12}  {:>12}  {:>12}  {:>7}\n",
        "kernel", "warps", "noprobe_us", "counting_us", "warps/s", "probe%"
    ));
    for r in records {
        out.push_str(&format!(
            "{:>8}  {:>8}  {:>12.1}  {:>12.1}  {:>12.0}  {:>6.1}%\n",
            r.kernel,
            r.warps,
            r.noprobe_us,
            r.counting_us,
            r.warps_per_sec_counting(),
            100.0 * r.probe_share()
        ));
    }
    out.push_str(&format!(
        "   —  interpreter overhead: probe hooks {:.1}% of instrumented wall \
         (lane math {:.1}%), best-of-{} microbench\n",
        100.0 * probe_overhead_share(records),
        100.0 * (1.0 - probe_overhead_share(records)),
        records.first().map_or(0, |r| r.reps),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterned_matrices_have_expected_row_lengths() {
        let m = patterned(100, 512, &[1, 3]);
        for r in 0..100 {
            let want = if r % 2 == 0 { 1 } else { 3 };
            assert_eq!(m.row_len(r), want, "row {r}");
        }
    }

    #[test]
    fn records_carry_positive_throughput() {
        // One reps keeps this a smoke test; the numbers only need to be
        // well-formed, not stable.
        let recs = run_interp_bench(1);
        assert_eq!(recs.len(), 6);
        for r in &recs {
            assert!(r.warps > 0, "{}: no warps simulated", r.kernel);
            assert!(r.warps_per_sec_counting() > 0.0);
            assert!((0.0..=1.0).contains(&r.probe_share()));
        }
        let table = render_interp_table(&recs);
        assert!(table.contains("interpreter overhead"), "{table}");
        assert!(table.contains("short13"), "{table}");
        assert!((0.0..=1.0).contains(&probe_overhead_share(&recs)));
    }

    #[test]
    fn overhead_share_aggregates_and_clamps() {
        let rec = |n: f64, c: f64| InterpRecord {
            kernel: "k".into(),
            warps: 10,
            reps: 1,
            noprobe_us: n,
            counting_us: c,
        };
        // 25 total noprobe vs 50 total counting → 50% in hooks.
        assert!((probe_overhead_share(&[rec(10.0, 20.0), rec(15.0, 30.0)]) - 0.5).abs() < 1e-12);
        // Noise: instrumented faster than bare clamps to zero.
        assert_eq!(probe_overhead_share(&[rec(30.0, 20.0)]), 0.0);
        assert_eq!(probe_overhead_share(&[]), 0.0);
    }
}

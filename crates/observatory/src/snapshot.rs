//! The versioned `BENCH_<seq>.json` snapshot schema.
//!
//! A snapshot is one suite run frozen to disk: schema/version header,
//! provenance (git revision, device, executor, matrix profile, rep
//! count), and one entry per workload carrying the wall-clock series
//! summary, the roofline model's estimate, and the traffic/op counters.
//! Snapshots committed at the repo root (`BENCH_0001.json`,
//! `BENCH_0002.json`, …) form the performance trajectory; `dasp-bench
//! diff` compares any two.
//!
//! Emission is deterministic — workloads sort by id, keys are in fixed
//! order — so re-serializing a parsed snapshot is byte-stable.

use std::path::{Path, PathBuf};

use crate::json::{escape, fmt_num, Json};

/// Schema version this crate writes and reads.
pub const SCHEMA_VERSION: u64 = 1;

/// The `kind` discriminator every snapshot carries.
pub const SNAPSHOT_KIND: &str = "dasp-bench-snapshot";

/// Summary of a wall-clock sample series for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WallStats {
    /// Number of timed repetitions.
    pub reps: u64,
    /// Median of the samples, microseconds.
    pub median_us: f64,
    /// Median absolute deviation (unscaled), microseconds — the noise
    /// floor the diff gate widens its bands by.
    pub mad_us: f64,
    /// Fastest sample, microseconds.
    pub min_us: f64,
    /// Slowest sample, microseconds.
    pub max_us: f64,
}

/// The roofline model's view of one workload.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Modeled {
    /// Estimated GPU kernel time, microseconds. Deterministic for a given
    /// build, so the diff gate holds it to a plain threshold with no
    /// noise band.
    pub us: f64,
    /// RANDOM ACCESS share of attributed time (0..=1).
    pub random_share: f64,
    /// COMPUTE share of attributed time (0..=1).
    pub compute_share: f64,
    /// MISC share of attributed time (0..=1).
    pub misc_share: f64,
    /// Throughput, GFlops.
    pub gflops: f64,
}

/// DRAM/cache traffic counters for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrafficCounters {
    /// Total DRAM bytes (streamed arrays + x-miss line fills).
    pub dram_bytes: u64,
    /// Matrix value bytes streamed.
    pub bytes_val: u64,
    /// Column-index bytes streamed.
    pub bytes_idx: u64,
    /// x-gather requests issued.
    pub x_requests: u64,
    /// x-gather requests served by the modeled L2.
    pub x_hits: u64,
}

/// Instruction counters for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpsCounters {
    /// `mma.m8n8k4` issues.
    pub mma_ops: u64,
    /// Scalar fused multiply-adds.
    pub fma_ops: u64,
    /// Kernel launches.
    pub launches: u64,
}

/// One workload's record in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Stable id, e.g. `spmv/banded/dasp` or `spmm/rmat/dasp/rhs8`.
    pub id: String,
    /// Matrix nonzeros (provenance; also catches profile mismatches).
    pub nnz: u64,
    /// Wall-clock series summary.
    pub wall: WallStats,
    /// Modeled GPU time and attribution.
    pub modeled: Modeled,
    /// Traffic counters.
    pub traffic: TrafficCounters,
    /// Instruction counters.
    pub ops: OpsCounters,
}

/// One full suite run, as written to `BENCH_<seq>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Sequence number in the trajectory (1-based).
    pub seq: u64,
    /// Short git revision the run was built from (`unknown` outside a
    /// checkout).
    pub git_rev: String,
    /// Matrix profile: `quick` or `full`.
    pub profile: String,
    /// Device model name, e.g. `a100`.
    pub device: String,
    /// Executor: `seq` or `par`.
    pub executor: String,
    /// Wall-clock repetitions per workload.
    pub reps: u64,
    /// Per-workload records, sorted by id.
    pub workloads: Vec<Workload>,
}

impl BenchSnapshot {
    /// Serializes to the canonical JSON form: fixed key order, workloads
    /// sorted by id, one workload per line for reviewable diffs.
    pub fn to_json(&self) -> String {
        let mut ws = self.workloads.clone();
        ws.sort_by(|a, b| a.id.cmp(&b.id));
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"kind\": \"{SNAPSHOT_KIND}\",\n"));
        out.push_str(&format!("  \"seq\": {},\n", self.seq));
        out.push_str(&format!("  \"git_rev\": \"{}\",\n", escape(&self.git_rev)));
        out.push_str(&format!("  \"profile\": \"{}\",\n", escape(&self.profile)));
        out.push_str(&format!("  \"device\": \"{}\",\n", escape(&self.device)));
        out.push_str(&format!(
            "  \"executor\": \"{}\",\n",
            escape(&self.executor)
        ));
        out.push_str(&format!("  \"reps\": {},\n", self.reps));
        out.push_str("  \"workloads\": [");
        for (i, w) in ws.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            out.push_str(&workload_json(w));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses and schema-validates a snapshot document.
    pub fn from_json(text: &str) -> Result<BenchSnapshot, String> {
        let doc = Json::parse(text)?;
        let version = doc.req_u64("schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let kind = doc.req_str("kind")?;
        if kind != SNAPSHOT_KIND {
            return Err(format!("not a bench snapshot (kind {kind:?})"));
        }
        let workloads_json = doc
            .get("workloads")
            .and_then(Json::as_arr)
            .ok_or("missing `workloads` array")?;
        let mut workloads = Vec::with_capacity(workloads_json.len());
        for (i, w) in workloads_json.iter().enumerate() {
            workloads.push(parse_workload(w).map_err(|e| format!("workloads[{i}]: {e}"))?);
        }
        workloads.sort_by(|a, b| a.id.cmp(&b.id));
        for pair in workloads.windows(2) {
            if pair[0].id == pair[1].id {
                return Err(format!("duplicate workload id {:?}", pair[0].id));
            }
        }
        Ok(BenchSnapshot {
            seq: doc.req_u64("seq")?,
            git_rev: doc.req_str("git_rev")?.to_string(),
            profile: doc.req_str("profile")?.to_string(),
            device: doc.req_str("device")?.to_string(),
            executor: doc.req_str("executor")?.to_string(),
            reps: doc.req_u64("reps")?,
            workloads,
        })
    }

    /// The workload with the given id, if present.
    pub fn workload(&self, id: &str) -> Option<&Workload> {
        self.workloads.iter().find(|w| w.id == id)
    }
}

fn workload_json(w: &Workload) -> String {
    format!(
        "{{\"id\": \"{}\", \"nnz\": {}, \
         \"wall\": {{\"reps\": {}, \"median_us\": {}, \"mad_us\": {}, \"min_us\": {}, \"max_us\": {}}}, \
         \"modeled\": {{\"us\": {}, \"random_share\": {}, \"compute_share\": {}, \"misc_share\": {}, \"gflops\": {}}}, \
         \"traffic\": {{\"dram_bytes\": {}, \"bytes_val\": {}, \"bytes_idx\": {}, \"x_requests\": {}, \"x_hits\": {}}}, \
         \"ops\": {{\"mma_ops\": {}, \"fma_ops\": {}, \"launches\": {}}}}}",
        escape(&w.id),
        w.nnz,
        w.wall.reps,
        fmt_num(w.wall.median_us),
        fmt_num(w.wall.mad_us),
        fmt_num(w.wall.min_us),
        fmt_num(w.wall.max_us),
        fmt_num(w.modeled.us),
        fmt_num(w.modeled.random_share),
        fmt_num(w.modeled.compute_share),
        fmt_num(w.modeled.misc_share),
        fmt_num(w.modeled.gflops),
        w.traffic.dram_bytes,
        w.traffic.bytes_val,
        w.traffic.bytes_idx,
        w.traffic.x_requests,
        w.traffic.x_hits,
        w.ops.mma_ops,
        w.ops.fma_ops,
        w.ops.launches,
    )
}

fn parse_workload(w: &Json) -> Result<Workload, String> {
    let wall = w.get("wall").ok_or("missing `wall`")?;
    let modeled = w.get("modeled").ok_or("missing `modeled`")?;
    let traffic = w.get("traffic").ok_or("missing `traffic`")?;
    let ops = w.get("ops").ok_or("missing `ops`")?;
    Ok(Workload {
        id: w.req_str("id")?.to_string(),
        nnz: w.req_u64("nnz")?,
        wall: WallStats {
            reps: wall.req_u64("reps")?,
            median_us: wall.req_f64("median_us")?,
            mad_us: wall.req_f64("mad_us")?,
            min_us: wall.req_f64("min_us")?,
            max_us: wall.req_f64("max_us")?,
        },
        modeled: Modeled {
            us: modeled.req_f64("us")?,
            random_share: modeled.req_f64("random_share")?,
            compute_share: modeled.req_f64("compute_share")?,
            misc_share: modeled.req_f64("misc_share")?,
            gflops: modeled.req_f64("gflops")?,
        },
        traffic: TrafficCounters {
            dram_bytes: traffic.req_u64("dram_bytes")?,
            bytes_val: traffic.req_u64("bytes_val")?,
            bytes_idx: traffic.req_u64("bytes_idx")?,
            x_requests: traffic.req_u64("x_requests")?,
            x_hits: traffic.req_u64("x_hits")?,
        },
        ops: OpsCounters {
            mma_ops: ops.req_u64("mma_ops")?,
            fma_ops: ops.req_u64("fma_ops")?,
            launches: ops.req_u64("launches")?,
        },
    })
}

/// The next free sequence number in `dir`: one past the highest
/// `BENCH_<n>.json` present, or 1 in a fresh directory. Non-matching
/// files are ignored.
pub fn next_seq(dir: &Path) -> u64 {
    let mut max = 0u64;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(num) = name
                .strip_prefix("BENCH_")
                .and_then(|rest| rest.strip_suffix(".json"))
            else {
                continue;
            };
            if let Ok(n) = num.parse::<u64>() {
                max = max.max(n);
            }
        }
    }
    max + 1
}

/// The canonical path for sequence number `seq` in `dir`:
/// `BENCH_0007.json` style (4-digit zero padding keeps lexicographic and
/// numeric order aligned for the first 9999 snapshots).
pub fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("BENCH_{seq:04}.json"))
}

/// The short git revision of the working tree: the `DASP_GIT_REV`
/// environment override if set (CI sets it from its own metadata), else
/// `git rev-parse --short HEAD`, else `"unknown"`.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("DASP_GIT_REV") {
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_workload(id: &str, median_us: f64, mad_us: f64) -> Workload {
        Workload {
            id: id.to_string(),
            nnz: 1000,
            wall: WallStats {
                reps: 5,
                median_us,
                mad_us,
                min_us: median_us - mad_us,
                max_us: median_us + 2.0 * mad_us,
            },
            modeled: Modeled {
                us: 12.5,
                random_share: 0.25,
                compute_share: 0.21,
                misc_share: 0.54,
                gflops: 100.0,
            },
            traffic: TrafficCounters {
                dram_bytes: 123456,
                bytes_val: 8000,
                bytes_idx: 4000,
                x_requests: 1000,
                x_hits: 900,
            },
            ops: OpsCounters {
                mma_ops: 64,
                fma_ops: 128,
                launches: 6,
            },
        }
    }

    pub(crate) fn sample_snapshot() -> BenchSnapshot {
        BenchSnapshot {
            seq: 1,
            git_rev: "abc1234".to_string(),
            profile: "quick".to_string(),
            device: "a100".to_string(),
            executor: "seq".to_string(),
            reps: 5,
            workloads: vec![
                sample_workload("spmv/banded/dasp", 100.0, 3.0),
                sample_workload("spmv/banded/csr-scalar", 220.0, 5.0),
                sample_workload("spmm/rmat/dasp/rhs8", 400.0, 9.0),
            ],
        }
    }

    #[test]
    fn snapshot_round_trips_byte_stable() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        assert!(dasp_trace::validate_json(&json).is_ok(), "{json}");
        let back = BenchSnapshot::from_json(&json).unwrap();
        // Workloads come back sorted by id regardless of input order.
        assert_eq!(back.workloads.len(), 3);
        assert!(back.workloads.windows(2).all(|p| p[0].id < p[1].id));
        assert_eq!(
            back.workload("spmv/banded/dasp").unwrap().wall.median_us,
            100.0
        );
        // Re-serializing the parsed snapshot reproduces identical bytes.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn from_json_rejects_wrong_schema_or_kind() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let wrong_version = json.replacen("\"schema_version\": 1", "\"schema_version\": 99", 1);
        assert!(BenchSnapshot::from_json(&wrong_version)
            .unwrap_err()
            .contains("schema_version"));
        let wrong_kind = json.replacen(SNAPSHOT_KIND, "something-else", 1);
        assert!(BenchSnapshot::from_json(&wrong_kind).is_err());
        assert!(BenchSnapshot::from_json("{}").is_err());
        assert!(BenchSnapshot::from_json("not json").is_err());
    }

    #[test]
    fn from_json_rejects_duplicate_and_malformed_workloads() {
        let mut snap = sample_snapshot();
        snap.workloads
            .push(sample_workload("spmv/banded/dasp", 1.0, 0.1));
        let err = BenchSnapshot::from_json(&snap.to_json()).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");

        let good = sample_snapshot().to_json();
        let no_wall = good.replacen("\"wall\"", "\"wal\"", 1);
        let err = BenchSnapshot::from_json(&no_wall).unwrap_err();
        assert!(err.contains("workloads[") && err.contains("wall"), "{err}");
    }

    #[test]
    fn seq_scanning_and_paths() {
        let dir = std::env::temp_dir().join(format!(
            "dasp-observatory-seq-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_seq(&dir), 1);
        std::fs::write(snapshot_path(&dir, 1), "{}").unwrap();
        std::fs::write(dir.join("BENCH_12.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_notanum.json"), "{}").unwrap();
        std::fs::write(dir.join("other.json"), "{}").unwrap();
        assert_eq!(next_seq(&dir), 13);
        assert_eq!(
            snapshot_path(&dir, 7)
                .file_name()
                .unwrap()
                .to_str()
                .unwrap(),
            "BENCH_0007.json"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn git_rev_prefers_env_override() {
        // Can't mutate the process env safely under the parallel test
        // runner; just assert the fallback path yields *something*.
        assert!(!git_rev().is_empty());
    }
}

//! Noise-aware regression comparison between two snapshots.
//!
//! Wall-clock medians are noisy, so a naive percent threshold either
//! false-positives on quiet machines or misses real slowdowns on loud
//! ones. The gate here requires **both** conditions:
//!
//! 1. the relative change exceeds the threshold (default 10%), and
//! 2. the absolute change exceeds `mad_factor` (default 2) times the
//!    combined standard error of the two medians.
//!
//! Each snapshot records the per-workload sample MAD; the uncertainty of
//! a *median* of `n` samples is about `1.4826 * MAD / sqrt(n)` (the
//! normal-consistent MAD scaling), and the two runs' errors add in
//! quadrature. Using the raw MAD sum instead would conflate sample
//! spread with median uncertainty: the suite's interleaved sampling
//! deliberately lets each series absorb machine drift, so raw MADs run
//! 5–10% of the median and a band of `3 * (mad_old + mad_new)` would
//! swallow real 20% slowdowns.
//!
//! The band additionally has a **relative drift floor** (default 15% of
//! the old median). Within-run statistics cannot see *between-run*
//! machine drift — on a loaded shared host an entire run's sweeps can be
//! 10–15% slower than a run a minute earlier, with every sample shifted
//! together so the MAD stays small. The floor encodes that a shift a
//! co-tenant can produce is not attributable to the code under test;
//! only slowdowns past both the standard-error band and the floor fail
//! the gate.
//!
//! Modeled GPU time is deterministic for a given build, so it gets a
//! plain (tighter) relative threshold with no noise band. A workload that
//! regresses on either axis fails the diff; a workload present in the
//! old snapshot but missing from the new one also fails (a silently
//! dropped workload must not pass a perf gate).

use crate::json::{escape, fmt_num};
use crate::snapshot::{BenchSnapshot, Workload};

/// Thresholds for [`diff_snapshots`].
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Relative wall-clock change above which a slowdown is suspect.
    pub wall_threshold: f64,
    /// Noise multiplier: the absolute wall change must also exceed
    /// `mad_factor` times the combined standard error of the two medians
    /// (`1.4826 * mad / sqrt(reps)` per side, added in quadrature).
    pub mad_factor: f64,
    /// Floor on the wall noise band as a fraction of the old median,
    /// covering between-run machine drift invisible to within-run MADs
    /// (whole runs shift together on a loaded host). The band is
    /// `max(mad_factor * se, drift_floor * old_median)`.
    pub drift_floor: f64,
    /// Relative threshold for the deterministic modeled time.
    pub modeled_threshold: f64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            wall_threshold: 0.10,
            mad_factor: 2.0,
            drift_floor: 0.15,
            modeled_threshold: 0.02,
        }
    }
}

/// Per-workload outcome of a diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the noise bands on every axis.
    Ok,
    /// Slower beyond threshold + noise on at least one axis.
    Regressed,
    /// Faster beyond threshold + noise (and regressed on no axis).
    Improved,
    /// Present only in the new snapshot.
    New,
    /// Present only in the old snapshot — fails the gate.
    Missing,
}

impl Verdict {
    /// Lower-case label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Regressed => "regressed",
            Verdict::Improved => "improved",
            Verdict::New => "new",
            Verdict::Missing => "missing",
        }
    }
}

/// One workload's comparison.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Workload id.
    pub id: String,
    /// Outcome.
    pub verdict: Verdict,
    /// Old wall median, microseconds (0 for [`Verdict::New`]).
    pub wall_old_us: f64,
    /// New wall median, microseconds (0 for [`Verdict::Missing`]).
    pub wall_new_us: f64,
    /// Relative wall change (`new/old - 1`; 0 when either side absent).
    pub wall_rel: f64,
    /// Old modeled time, microseconds.
    pub modeled_old_us: f64,
    /// New modeled time, microseconds.
    pub modeled_new_us: f64,
    /// Relative modeled change.
    pub modeled_rel: f64,
    /// Human explanation when the verdict is not `Ok` (which axis, by how
    /// much, against what noise band).
    pub why: String,
}

/// The full comparison of two snapshots.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Sequence number of the old snapshot.
    pub old_seq: u64,
    /// Sequence number of the new snapshot.
    pub new_seq: u64,
    /// Thresholds used.
    pub config: DiffConfig,
    /// Per-workload rows, sorted by id.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// Rows that fail the gate (regressed or missing).
    pub fn failures(&self) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Regressed | Verdict::Missing))
            .collect()
    }

    /// Whether the diff should fail a gate.
    pub fn has_regression(&self) -> bool {
        !self.failures().is_empty()
    }

    /// Renders the human comparison table plus a one-line verdict.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<34}  {:>9}  {:>9}  {:>7}  {:>9}  {:>9}  {:>7}  verdict\n",
            "workload", "wall_old", "wall_new", "wall%", "model_old", "model_new", "model%"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<34}  {:>9.1}  {:>9.1}  {:>+6.1}%  {:>9.2}  {:>9.2}  {:>+6.1}%  {}{}\n",
                r.id,
                r.wall_old_us,
                r.wall_new_us,
                100.0 * r.wall_rel,
                r.modeled_old_us,
                r.modeled_new_us,
                100.0 * r.modeled_rel,
                r.verdict.label(),
                if r.why.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", r.why)
                }
            ));
        }
        let fails = self.failures();
        if fails.is_empty() {
            out.push_str(&format!(
                "\nPASS: no regressions across {} workloads (seq {} -> {}).\n",
                self.rows.len(),
                self.old_seq,
                self.new_seq
            ));
        } else {
            out.push_str(&format!(
                "\nFAIL: {} regression(s) (seq {} -> {}):\n",
                fails.len(),
                self.old_seq,
                self.new_seq
            ));
            for r in fails {
                out.push_str(&format!("  {}: {}\n", r.id, r.why));
            }
        }
        out
    }

    /// Machine-readable verdict JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema_version\": 1,\n");
        out.push_str("  \"kind\": \"dasp-bench-diff\",\n");
        out.push_str(&format!("  \"old_seq\": {},\n", self.old_seq));
        out.push_str(&format!("  \"new_seq\": {},\n", self.new_seq));
        out.push_str(&format!(
            "  \"wall_threshold\": {},\n",
            fmt_num(self.config.wall_threshold)
        ));
        out.push_str(&format!(
            "  \"mad_factor\": {},\n",
            fmt_num(self.config.mad_factor)
        ));
        out.push_str(&format!(
            "  \"drift_floor\": {},\n",
            fmt_num(self.config.drift_floor)
        ));
        out.push_str(&format!(
            "  \"modeled_threshold\": {},\n",
            fmt_num(self.config.modeled_threshold)
        ));
        out.push_str(&format!("  \"regressions\": {},\n", self.failures().len()));
        out.push_str(&format!("  \"pass\": {},\n", !self.has_regression()));
        out.push_str("  \"rows\": [");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"verdict\": \"{}\", \
                 \"wall_old_us\": {}, \"wall_new_us\": {}, \"wall_rel\": {}, \
                 \"modeled_old_us\": {}, \"modeled_new_us\": {}, \"modeled_rel\": {}, \
                 \"why\": \"{}\"}}",
                escape(&r.id),
                r.verdict.label(),
                fmt_num(r.wall_old_us),
                fmt_num(r.wall_new_us),
                fmt_num(r.wall_rel),
                fmt_num(r.modeled_old_us),
                fmt_num(r.modeled_new_us),
                fmt_num(r.modeled_rel),
                escape(&r.why),
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn rel(old: f64, new: f64) -> f64 {
    if old <= 0.0 {
        0.0
    } else {
        new / old - 1.0
    }
}

/// Compares `new` against `old` workload by workload.
pub fn diff_snapshots(old: &BenchSnapshot, new: &BenchSnapshot, cfg: DiffConfig) -> DiffReport {
    let mut rows = Vec::new();
    for ow in &old.workloads {
        match new.workload(&ow.id) {
            Some(nw) => rows.push(compare(ow, nw, &cfg)),
            None => rows.push(DiffRow {
                id: ow.id.clone(),
                verdict: Verdict::Missing,
                wall_old_us: ow.wall.median_us,
                wall_new_us: 0.0,
                wall_rel: 0.0,
                modeled_old_us: ow.modeled.us,
                modeled_new_us: 0.0,
                modeled_rel: 0.0,
                why: "workload missing from new snapshot".to_string(),
            }),
        }
    }
    for nw in &new.workloads {
        if old.workload(&nw.id).is_none() {
            rows.push(DiffRow {
                id: nw.id.clone(),
                verdict: Verdict::New,
                wall_old_us: 0.0,
                wall_new_us: nw.wall.median_us,
                wall_rel: 0.0,
                modeled_old_us: 0.0,
                modeled_new_us: nw.modeled.us,
                modeled_rel: 0.0,
                why: "new workload (no baseline)".to_string(),
            });
        }
    }
    rows.sort_by(|a, b| a.id.cmp(&b.id));
    DiffReport {
        old_seq: old.seq,
        new_seq: new.seq,
        config: cfg,
        rows,
    }
}

/// Standard error of a series' median: normal-consistent MAD scaling
/// over root-n.
fn median_se_us(w: &crate::snapshot::WallStats) -> f64 {
    1.4826 * w.mad_us / (w.reps.max(1) as f64).sqrt()
}

fn compare(ow: &Workload, nw: &Workload, cfg: &DiffConfig) -> DiffRow {
    let wall_rel = rel(ow.wall.median_us, nw.wall.median_us);
    let modeled_rel = rel(ow.modeled.us, nw.modeled.us);
    let se = (median_se_us(&ow.wall).powi(2) + median_se_us(&nw.wall).powi(2)).sqrt();
    let noise_us = (cfg.mad_factor * se).max(cfg.drift_floor * ow.wall.median_us);
    let wall_delta = nw.wall.median_us - ow.wall.median_us;

    // Both conditions must hold for wall verdicts: past the relative
    // threshold AND outside the combined noise band.
    let wall_signif = wall_rel.abs() > cfg.wall_threshold && wall_delta.abs() > noise_us;
    let wall_regressed = wall_signif && wall_delta > 0.0;
    let wall_improved = wall_signif && wall_delta < 0.0;

    let modeled_regressed = modeled_rel > cfg.modeled_threshold;
    let modeled_improved = modeled_rel < -cfg.modeled_threshold;

    let mut why = Vec::new();
    if wall_regressed {
        why.push(format!(
            "wall {:+.1}% exceeds {:.0}% and noise band ±{:.1}us",
            100.0 * wall_rel,
            100.0 * cfg.wall_threshold,
            noise_us
        ));
    }
    if modeled_regressed {
        why.push(format!(
            "modeled {:+.1}% exceeds {:.0}%",
            100.0 * modeled_rel,
            100.0 * cfg.modeled_threshold
        ));
    }

    let verdict = if wall_regressed || modeled_regressed {
        Verdict::Regressed
    } else if wall_improved || modeled_improved {
        Verdict::Improved
    } else {
        Verdict::Ok
    };
    DiffRow {
        id: ow.id.clone(),
        verdict,
        wall_old_us: ow.wall.median_us,
        wall_new_us: nw.wall.median_us,
        wall_rel,
        modeled_old_us: ow.modeled.us,
        modeled_new_us: nw.modeled.us,
        modeled_rel,
        why: why.join("; "),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Modeled, OpsCounters, TrafficCounters, WallStats};

    fn workload(id: &str, median_us: f64, mad_us: f64, modeled_us: f64) -> Workload {
        Workload {
            id: id.to_string(),
            nnz: 1000,
            wall: WallStats {
                reps: 5,
                median_us,
                mad_us,
                min_us: median_us - mad_us,
                max_us: median_us + mad_us,
            },
            modeled: Modeled {
                us: modeled_us,
                random_share: 0.25,
                compute_share: 0.21,
                misc_share: 0.54,
                gflops: 100.0,
            },
            traffic: TrafficCounters::default(),
            ops: OpsCounters::default(),
        }
    }

    fn snapshot(seq: u64, workloads: Vec<Workload>) -> BenchSnapshot {
        BenchSnapshot {
            seq,
            git_rev: "test".to_string(),
            profile: "quick".to_string(),
            device: "a100".to_string(),
            executor: "seq".to_string(),
            reps: 5,
            workloads,
        }
    }

    #[test]
    fn noisy_shift_within_mad_band_is_not_a_regression() {
        // 12% slower clears the 10% threshold, but with MADs of 8us over
        // 5 reps each median's se is 1.4826*8/sqrt(5) = 5.3us, combined
        // 7.5us, band 2*7.5 = 15us — a 12us shift stays inside it. The
        // drift floor is lowered below the shift so the se band alone
        // carries this test.
        let old = snapshot(1, vec![workload("spmv/banded/dasp", 100.0, 8.0, 10.0)]);
        let new = snapshot(2, vec![workload("spmv/banded/dasp", 112.0, 8.0, 10.0)]);
        let cfg = DiffConfig {
            drift_floor: 0.05,
            ..DiffConfig::default()
        };
        let report = diff_snapshots(&old, &new, cfg);
        assert!(!report.has_regression(), "{}", report.render_table());
        assert_eq!(report.rows[0].verdict, Verdict::Ok);
    }

    #[test]
    fn between_run_drift_under_the_floor_is_not_a_regression() {
        // A whole run 13% slower with tiny MADs: within-run statistics
        // look rock solid (se band ~1us), but the default 15% drift
        // floor recognizes this as machine drift, not a code regression.
        let old = snapshot(1, vec![workload("spmv/banded/dasp", 100.0, 1.0, 10.0)]);
        let new = snapshot(2, vec![workload("spmv/banded/dasp", 113.0, 1.0, 10.0)]);
        let report = diff_snapshots(&old, &new, DiffConfig::default());
        assert!(!report.has_regression(), "{}", report.render_table());
        assert_eq!(report.rows[0].verdict, Verdict::Ok);
        // Zeroing the floor exposes the same shift as a regression.
        let no_floor = DiffConfig {
            drift_floor: 0.0,
            ..DiffConfig::default()
        };
        assert!(diff_snapshots(&old, &new, no_floor).has_regression());
    }

    #[test]
    fn planted_twenty_percent_slowdown_is_flagged_by_name() {
        let old = snapshot(
            1,
            vec![
                workload("spmv/banded/dasp", 100.0, 1.0, 10.0),
                workload("spmv/rmat/csr5", 200.0, 1.0, 20.0),
            ],
        );
        let new = snapshot(
            2,
            vec![
                workload("spmv/banded/dasp", 120.0, 1.0, 10.0),
                workload("spmv/rmat/csr5", 201.0, 1.0, 20.0),
            ],
        );
        let report = diff_snapshots(&old, &new, DiffConfig::default());
        assert!(report.has_regression());
        let fails = report.failures();
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].id, "spmv/banded/dasp");
        assert_eq!(fails[0].verdict, Verdict::Regressed);
        // The offending workload is named in both renderings.
        let table = report.render_table();
        assert!(table.contains("FAIL: 1 regression"), "{table}");
        assert!(table.contains("spmv/banded/dasp: wall"), "{table}");
        let json = report.to_json();
        assert!(dasp_trace::validate_json(&json).is_ok());
        assert!(json.contains("\"pass\": false"), "{json}");
        assert!(json.contains("\"verdict\": \"regressed\""), "{json}");
    }

    #[test]
    fn identical_snapshots_pass_cleanly() {
        let snap = snapshot(1, vec![workload("spmv/banded/dasp", 100.0, 2.0, 10.0)]);
        let report = diff_snapshots(&snap, &snap, DiffConfig::default());
        assert!(!report.has_regression());
        assert!(report.render_table().contains("PASS"), "table");
        assert!(report.to_json().contains("\"pass\": true"));
    }

    #[test]
    fn large_speedup_is_reported_as_improvement_not_failure() {
        let old = snapshot(1, vec![workload("spmv/banded/dasp", 100.0, 1.0, 10.0)]);
        let new = snapshot(2, vec![workload("spmv/banded/dasp", 70.0, 1.0, 9.9)]);
        let report = diff_snapshots(&old, &new, DiffConfig::default());
        assert!(!report.has_regression());
        assert_eq!(report.rows[0].verdict, Verdict::Improved);
    }

    #[test]
    fn modeled_time_regression_needs_no_noise_band() {
        // Wall identical, but the deterministic model says 5% slower.
        let old = snapshot(1, vec![workload("spmv/banded/dasp", 100.0, 5.0, 10.0)]);
        let new = snapshot(2, vec![workload("spmv/banded/dasp", 100.0, 5.0, 10.5)]);
        let report = diff_snapshots(&old, &new, DiffConfig::default());
        assert!(report.has_regression());
        assert!(
            report.failures()[0].why.contains("modeled"),
            "{:?}",
            report.rows
        );
    }

    #[test]
    fn missing_workload_fails_and_new_workload_passes() {
        let old = snapshot(
            1,
            vec![
                workload("spmv/banded/dasp", 100.0, 1.0, 10.0),
                workload("spmv/banded/hyb", 150.0, 1.0, 15.0),
            ],
        );
        let new = snapshot(
            2,
            vec![
                workload("spmv/banded/dasp", 100.0, 1.0, 10.0),
                workload("spmv/banded/sell-c-sigma", 90.0, 1.0, 9.0),
            ],
        );
        let report = diff_snapshots(&old, &new, DiffConfig::default());
        assert!(report.has_regression());
        let by_id = |id: &str| report.rows.iter().find(|r| r.id == id).unwrap();
        assert_eq!(by_id("spmv/banded/hyb").verdict, Verdict::Missing);
        assert_eq!(by_id("spmv/banded/sell-c-sigma").verdict, Verdict::New);
        assert_eq!(report.failures().len(), 1);
    }

    #[test]
    fn custom_thresholds_change_the_gate() {
        let old = snapshot(1, vec![workload("w", 100.0, 0.5, 10.0)]);
        let new = snapshot(2, vec![workload("w", 106.0, 0.5, 10.0)]);
        // Default 10% threshold: 6% is fine.
        assert!(!diff_snapshots(&old, &new, DiffConfig::default()).has_regression());
        // Tightened to 5% with a matching floor: now it fails (the noise
        // band, 2 combined standard errors = 0.9us, is far below the 6us
        // shift).
        let tight = DiffConfig {
            wall_threshold: 0.05,
            drift_floor: 0.02,
            ..DiffConfig::default()
        };
        assert!(diff_snapshots(&old, &new, tight).has_regression());
        // Same thresholds but a huge mad_factor swallows it again.
        let forgiving = DiffConfig {
            wall_threshold: 0.05,
            mad_factor: 30.0,
            drift_floor: 0.02,
            ..DiffConfig::default()
        };
        assert!(!diff_snapshots(&old, &new, forgiving).has_regression());
    }
}

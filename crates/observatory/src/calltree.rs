//! Call-tree profiling over `dasp-trace` spans.
//!
//! A raw [`Trace`] is a flat list of span records; answering "where did
//! the time go" needs them folded into a tree keyed by *name path* (the
//! chain of span names from the root), aggregating every dynamic
//! occurrence of the same path into one node with call counts and
//! inclusive/exclusive microseconds. Exclusive time is inclusive time
//! minus the inclusive time of direct children — the quantity a hot-spot
//! table should rank by, since a root span is "hot" inclusively even when
//! all its time sits in leaves.

use std::collections::{BTreeMap, HashMap};

use dasp_trace::{SpanRecord, Trace};

/// One aggregated node of the call tree: all dynamic spans that share the
/// same name path, summed.
#[derive(Debug, Clone, PartialEq)]
pub struct CallNode {
    /// Name path from the root, e.g. `["spmv", "spmv.kernel.long"]`.
    pub path: Vec<String>,
    /// Number of dynamic spans aggregated into this node.
    pub calls: u64,
    /// Total wall microseconds including children.
    pub incl_us: u64,
    /// Total wall microseconds excluding direct children (saturated at 0:
    /// clock granularity can make children sum past their parent).
    pub excl_us: u64,
}

impl CallNode {
    /// Depth of the node (1 for roots).
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// The node's own name (last path component).
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }
}

/// A call tree aggregated from one or more traces.
#[derive(Debug, Clone, Default)]
pub struct CallTree {
    /// Aggregated nodes keyed by name path; `BTreeMap` keeps iteration
    /// (and thus every export) deterministic.
    nodes: BTreeMap<Vec<String>, CallNode>,
}

/// Maximum name-path depth retained; deeper spans fold into their
/// ancestor at this depth. Real DASP traces are 2–3 deep, so this only
/// guards against degenerate inputs.
const MAX_DEPTH: usize = 32;

impl CallTree {
    /// Builds a call tree from a trace. Spans whose parent id is missing
    /// from the trace (possible when `take_trace` ran while spans were
    /// open) are treated as roots; parent cycles are broken at
    /// `MAX_DEPTH`.
    pub fn from_trace(trace: &Trace) -> CallTree {
        let mut tree = CallTree::default();
        tree.add_trace(trace);
        tree
    }

    /// Folds another trace into this tree (the suite runner calls this
    /// once per workload so one tree spans the whole run).
    pub fn add_trace(&mut self, trace: &Trace) {
        let by_id: HashMap<u64, &SpanRecord> = trace.spans.iter().map(|s| (s.id, s)).collect();
        // Inclusive time of direct children, per parent id, for the
        // exclusive-time subtraction.
        let mut child_us: HashMap<u64, u64> = HashMap::new();
        for s in &trace.spans {
            if let Some(pid) = s.parent {
                if by_id.contains_key(&pid) {
                    *child_us.entry(pid).or_default() += s.dur_us;
                }
            }
        }
        for s in &trace.spans {
            let path = name_path(s, &by_id);
            let excl = s
                .dur_us
                .saturating_sub(child_us.get(&s.id).copied().unwrap_or(0));
            let node = self.nodes.entry(path.clone()).or_insert_with(|| CallNode {
                path,
                calls: 0,
                incl_us: 0,
                excl_us: 0,
            });
            node.calls += 1;
            node.incl_us += s.dur_us;
            node.excl_us += excl;
        }
    }

    /// All nodes in deterministic (path-lexicographic) order.
    pub fn nodes(&self) -> impl Iterator<Item = &CallNode> {
        self.nodes.values()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total exclusive microseconds across all nodes (equals the sum of
    /// root inclusive times, up to clock granularity).
    pub fn total_excl_us(&self) -> u64 {
        self.nodes.values().map(|n| n.excl_us).sum()
    }

    /// The `n` hottest nodes by exclusive time, ties broken by path so
    /// the ranking is deterministic.
    pub fn hot(&self, n: usize) -> Vec<&CallNode> {
        let mut all: Vec<&CallNode> = self.nodes.values().collect();
        all.sort_by(|a, b| b.excl_us.cmp(&a.excl_us).then_with(|| a.path.cmp(&b.path)));
        all.truncate(n);
        all
    }

    /// Renders the top-`n` hot-region table: rank, exclusive/inclusive
    /// time, share of total exclusive time, call count, and the indented
    /// name path.
    pub fn render_hot_table(&self, n: usize) -> String {
        let total = self.total_excl_us().max(1) as f64;
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4}  {:>10}  {:>10}  {:>6}  {:>7}  region\n",
            "#", "excl_us", "incl_us", "excl%", "calls"
        ));
        for (i, node) in self.hot(n).iter().enumerate() {
            out.push_str(&format!(
                "{:>4}  {:>10}  {:>10}  {:>5.1}%  {:>7}  {}{}\n",
                i + 1,
                node.excl_us,
                node.incl_us,
                100.0 * node.excl_us as f64 / total,
                node.calls,
                "  ".repeat(node.depth().saturating_sub(1)),
                node.name()
            ));
        }
        out
    }

    /// Collapsed-stack (flamegraph) export: one `a;b;c <excl_us>` line
    /// per node with non-zero exclusive time, sorted, suitable for
    /// `flamegraph.pl` / speedscope. Frame names have `;` and spaces
    /// sanitized since both are structural in the format.
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for node in self.nodes.values() {
            if node.excl_us == 0 {
                continue;
            }
            let frames: Vec<String> = node
                .path
                .iter()
                .map(|f| f.replace(';', ":").replace(' ', "_"))
                .collect();
            out.push_str(&format!("{} {}\n", frames.join(";"), node.excl_us));
        }
        out
    }
}

/// The chain of names from the root to `s`, walking parent links. Missing
/// parents terminate the walk (the span acts as a root); walks longer
/// than [`MAX_DEPTH`] — only possible with a corrupt parent cycle — are
/// truncated from the root side.
fn name_path(s: &SpanRecord, by_id: &HashMap<u64, &SpanRecord>) -> Vec<String> {
    let mut rev = vec![s.name.clone()];
    let mut cur = s.parent;
    while let Some(pid) = cur {
        if rev.len() >= MAX_DEPTH {
            break;
        }
        match by_id.get(&pid) {
            Some(p) => {
                rev.push(p.name.clone());
                cur = p.parent;
            }
            None => break,
        }
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_us: start,
            dur_us: dur,
            tid: 1,
            stats: None,
            args: Vec::new(),
        }
    }

    fn sample_trace() -> Trace {
        // root (100us) -> kernel.a (60us), kernel.b (25us)
        // second root occurrence (40us) -> kernel.a (30us)
        let mut t = Trace::default();
        t.spans.push(rec(1, Some(0), "kernel.a", 0, 60));
        t.spans.push(rec(2, Some(0), "kernel.b", 60, 25));
        t.spans.push(rec(0, None, "root", 0, 100));
        t.spans.push(rec(4, Some(3), "kernel.a", 100, 30));
        t.spans.push(rec(3, None, "root", 100, 40));
        t
    }

    #[test]
    fn aggregates_by_name_path_with_exclusive_times() {
        let tree = CallTree::from_trace(&sample_trace());
        let nodes: Vec<&CallNode> = tree.nodes().collect();
        assert_eq!(nodes.len(), 3);

        let root = nodes.iter().find(|n| n.path == ["root"]).unwrap();
        assert_eq!(root.calls, 2);
        assert_eq!(root.incl_us, 140);
        // Exclusive: (100 - 85) + (40 - 30).
        assert_eq!(root.excl_us, 25);

        let a = nodes
            .iter()
            .find(|n| n.path == ["root", "kernel.a"])
            .unwrap();
        assert_eq!(a.calls, 2);
        assert_eq!(a.incl_us, 90);
        assert_eq!(a.excl_us, 90);

        // Total exclusive equals total root-inclusive time.
        assert_eq!(tree.total_excl_us(), 140);
    }

    #[test]
    fn hot_ranks_by_exclusive_time() {
        let tree = CallTree::from_trace(&sample_trace());
        let hot = tree.hot(2);
        assert_eq!(hot[0].path, ["root", "kernel.a"]);
        assert_eq!(hot[1].path, ["root"]);
        let table = tree.render_hot_table(3);
        assert!(table.contains("kernel.a"), "{table}");
        assert!(table.contains("excl_us"), "{table}");
    }

    #[test]
    fn exclusive_time_saturates_when_children_overrun() {
        // Child reports 12us inside a 10us parent (clock granularity).
        let mut t = Trace::default();
        t.spans.push(rec(1, Some(0), "child", 0, 12));
        t.spans.push(rec(0, None, "parent", 0, 10));
        let tree = CallTree::from_trace(&t);
        let parent = tree.nodes().find(|n| n.path == ["parent"]).unwrap();
        assert_eq!(parent.excl_us, 0);
    }

    #[test]
    fn orphans_become_roots_and_cycles_terminate() {
        let mut t = Trace::default();
        t.spans.push(rec(7, Some(99), "orphan", 0, 5));
        // A two-node parent cycle; the walk must not hang.
        t.spans.push(rec(10, Some(11), "cyc.a", 0, 3));
        t.spans.push(rec(11, Some(10), "cyc.b", 0, 3));
        let tree = CallTree::from_trace(&t);
        assert!(tree.nodes().any(|n| n.path == ["orphan"]));
        assert!(tree.nodes().all(|n| n.path.len() <= MAX_DEPTH));
    }

    #[test]
    fn collapsed_stacks_are_sorted_and_sanitized() {
        let mut t = Trace::default();
        t.spans.push(rec(100, None, "a b;c", 0, 7));
        let mut t2 = sample_trace();
        t2.spans.append(&mut t.spans);
        let tree = CallTree::from_trace(&t2);
        let folded = tree.collapsed_stacks();
        assert!(folded.contains("a_b:c 7\n"), "{folded}");
        assert!(folded.contains("root;kernel.a 90\n"), "{folded}");
        // Zero-exclusive nodes are omitted; every line ends in a count.
        for line in folded.lines() {
            let (_, count) = line.rsplit_once(' ').unwrap();
            assert!(count.parse::<u64>().unwrap() > 0, "{line}");
        }
        // Deterministic: building again yields identical bytes.
        assert_eq!(folded, CallTree::from_trace(&t2).collapsed_stacks());
    }

    #[test]
    fn add_trace_merges_across_workloads() {
        let mut tree = CallTree::from_trace(&sample_trace());
        tree.add_trace(&sample_trace());
        let root = tree.nodes().find(|n| n.path == ["root"]).unwrap();
        assert_eq!(root.calls, 4);
        assert_eq!(root.incl_us, 280);
    }
}

//! A minimal JSON value parser and emitter helpers.
//!
//! The workspace has no serde; `dasp-trace` *emits* JSON by hand and
//! validates it, but the observatory must also *read* snapshots back
//! (`dasp-bench diff` compares two `BENCH_*.json` files), so this module
//! carries a small recursive-descent parser producing a [`Json`] tree.
//! Object keys keep their document order; lookups are linear, which is
//! fine at snapshot scale (tens of workloads, a dozen fields each).

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`; snapshot counters fit).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses exactly one JSON document.
    pub fn parse(input: &str) -> Result<Json, String> {
        let b = input.as_bytes();
        let mut pos = 0usize;
        skip_ws(b, &mut pos);
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Required-field accessors for schema readers: `get` + type check,
    /// with a path-labelled error.
    pub fn req_f64(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
    }

    /// Like [`Json::req_f64`] for non-negative integers.
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer field `{key}`"))
    }

    /// Like [`Json::req_f64`] for strings.
    pub fn req_str(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing or non-string field `{key}`"))
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Json::Str(string(b, pos)?)),
        Some(b't') => literal(b, pos, b"true", Json::Bool(true)),
        Some(b'f') => literal(b, pos, b"false", Json::Bool(false)),
        Some(b'n') => literal(b, pos, b"null", Json::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, pos)),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8], v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key string at byte {pos}"));
        }
        let key = string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        members.push((key, value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening '"'
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogates are replaced rather than paired; the
                        // snapshots this parser reads never emit them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}")),
            _ => {
                // Consume one full UTF-8 scalar so multi-byte characters
                // survive intact.
                let start = *pos;
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(start..start + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or_else(|| format!("invalid UTF-8 in string at byte {start}"))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-UTF8 number".to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number at byte {start}"))
}

/// Escapes `s` for inclusion inside a JSON string literal (no quotes
/// added).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON-legal number (non-finite values clamp to 0).
pub(crate) fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
        let doc = Json::parse(r#"{"a": [1, 2], "b": {"c": "x"}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().req_str("c").unwrap(), "x");
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{'a':1}", "{} extra", "NaN", "\"open"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let doc = Json::parse("\"caf\u{e9} \\u0041 \\t\"").unwrap();
        assert_eq!(doc.as_str().unwrap(), "café A \t");
        let escaped = format!("\"{}\"", escape("q\" b\\ n\n"));
        assert_eq!(
            Json::parse(&escaped).unwrap().as_str().unwrap(),
            "q\" b\\ n\n"
        );
    }

    #[test]
    fn integer_accessors_reject_fractions() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn req_accessors_name_the_field() {
        let doc = Json::parse(r#"{"n": "not-a-number"}"#).unwrap();
        let err = doc.req_f64("n").unwrap_err();
        assert!(err.contains("`n`"), "{err}");
        assert!(doc.req_str("n").is_ok());
        assert!(doc.req_u64("absent").is_err());
    }
}

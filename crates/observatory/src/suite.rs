//! The benchmark suite runner behind `dasp-bench record`.
//!
//! One suite run sweeps the workload grid — every matrix class in the
//! chosen profile × all ten SpMV methods, plus the SpMM widths for the
//! methods with panel kernels — and produces a [`BenchSnapshot`]
//! alongside a [`CallTree`] profile and the raw [`Trace`].
//!
//! Per workload the runner takes `reps` *untimed-model* wall-clock
//! samples (each sample is one full `measure` call: format build plus
//! the simulated kernel — exactly the CPU cost ROADMAP's interpreter
//! work targets) and then one extra traced run, unreported in the wall
//! series, that supplies the modeled time, the counters, and the spans.

use dasp_matgen::dense_vector;
use dasp_perf::{
    a100, h800, measure_spmm_traced_with, measure_spmm_with, measure_traced_with, measure_with,
    DeviceModel, MethodKind, WallSeries,
};
use dasp_simt::Executor;
use dasp_sparse::{Csr, DenseMat};
use dasp_trace::{Trace, Tracer};

use crate::calltree::CallTree;
use crate::snapshot::{
    git_rev, BenchSnapshot, Modeled, OpsCounters, TrafficCounters, WallStats, Workload,
};

/// Configuration for one suite run.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Wall-clock repetitions per workload.
    pub reps: usize,
    /// Device model name (`a100` or `h800`).
    pub device: String,
    /// Executor for every kernel run.
    pub executor: Executor,
    /// Matrix profile: `true` uses the scaled-down CI-sized matrices.
    pub quick: bool,
    /// SpMM right-hand-side widths to sweep (methods: DASP + the scalar
    /// reference). Empty disables the SpMM leg.
    pub spmm_widths: Vec<usize>,
    /// Sequence number stamped into the snapshot.
    pub seq: u64,
    /// Print one progress line per workload to stderr.
    pub progress: bool,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            reps: 5,
            device: "a100".to_string(),
            executor: Executor::seq(),
            quick: false,
            spmm_widths: vec![1, 8, 32, 128],
            seq: 1,
            progress: false,
        }
    }
}

/// Resolves a device model by CLI name.
pub fn device_by_name(name: &str) -> Option<DeviceModel> {
    match name {
        "a100" => Some(a100()),
        "h800" => Some(h800()),
        _ => None,
    }
}

/// Everything one suite run produces.
#[derive(Debug)]
pub struct SuiteOutcome {
    /// The snapshot, ready to serialize.
    pub snapshot: BenchSnapshot,
    /// Call-tree profile aggregated over every traced workload run.
    pub calltree: CallTree,
    /// The raw span trace (for Chrome-trace export).
    pub trace: Trace,
}

/// The traced form of a workload: runs once under the tracer and yields
/// the deterministic counters for the snapshot.
type TracedFn<'a> = Box<dyn Fn(&Tracer) -> (Modeled, TrafficCounters, OpsCounters) + 'a>;

/// One workload's runnable form: an untimed kernel closure plus the
/// traced variant that yields the counters.
struct Unit<'a> {
    id: String,
    nnz: u64,
    run: Box<dyn Fn() + 'a>,
    traced: TracedFn<'a>,
}

/// Runs the full suite over `matrices` (name, matrix) pairs — use
/// [`dasp_bench::suite_matrices`] for the standard set — and returns the
/// snapshot plus profile.
///
/// Wall sampling is **rep-major**: one warmup sweep over every workload,
/// then `reps` sweeps each timing every workload once. Burst-sampling a
/// single workload would make its whole series share one instant of
/// machine state — on a loaded host two back-to-back suite runs then
/// disagree by far more than either run's MAD claims. Interleaving
/// spreads each workload's samples across the full run, so the median
/// reflects run-average machine speed and the MAD genuinely covers the
/// drift the diff gate's noise band must absorb.
///
/// Panics if `cfg.device` is not a known model name.
///
/// [`dasp_bench::suite_matrices`]: fn@dasp_bench::suite_matrices
pub fn run_suite(cfg: &SuiteConfig, matrices: &[(&str, Csr<f64>)]) -> SuiteOutcome {
    let dev = device_by_name(&cfg.device)
        .unwrap_or_else(|| panic!("unknown device model {:?}", cfg.device));
    let tracer = Tracer::new();

    // Resident matrices for the verify.plan_check rows, built outside the
    // timed region: the row times static verification alone, not the
    // format conversion.
    let built: Vec<dasp_core::DaspMatrix<f64>> = matrices
        .iter()
        .map(|(_, csr)| dasp_core::DaspMatrix::from_csr(csr))
        .collect();

    let mut units: Vec<Unit> = Vec::new();
    for ((mat_name, csr), dm) in matrices.iter().zip(&built) {
        let nnz = csr.nnz() as u64;
        let x = dense_vector(csr.cols, 42);
        for method in MethodKind::all() {
            let (x_run, x_traced) = (x.clone(), x.clone());
            let exec = cfg.executor;
            units.push(Unit {
                id: format!("spmv/{mat_name}/{}", method.name()),
                nnz,
                run: Box::new(move || {
                    let _ = measure_with(method, csr, &x_run, &dev, &exec);
                }),
                traced: Box::new(move |t| {
                    let m = measure_traced_with(method, csr, &x_traced, &dev, t, &exec);
                    (
                        modeled(m.estimate.seconds, m.estimate.shares(), m.gflops),
                        traffic(&m.stats),
                        ops(&m.stats),
                    )
                }),
            });
        }

        for &width in &cfg.spmm_widths {
            let cols: Vec<Vec<f64>> = (0..width)
                .map(|j| dense_vector(csr.cols, 50 + j as u64))
                .collect();
            let b = DenseMat::from_columns(&cols);
            for method in [MethodKind::Dasp, MethodKind::CsrScalar] {
                let (b_run, b_traced) = (b.clone(), b.clone());
                let exec = cfg.executor;
                units.push(Unit {
                    id: format!("spmm/{mat_name}/{}/rhs{width}", method.name()),
                    nnz,
                    run: Box::new(move || {
                        let _ = measure_spmm_with(method, csr, &b_run, &dev, &exec);
                    }),
                    traced: Box::new(move |t| {
                        let m = measure_spmm_traced_with(method, csr, &b_traced, &dev, t, &exec);
                        (
                            modeled(m.estimate.seconds, m.estimate.shares(), m.gflops),
                            traffic(&m.stats),
                            ops(&m.stats),
                        )
                    }),
                });
            }
        }

        // How long admission-time static verification (`dasp-verify`)
        // takes on this matrix. No kernel runs, so the modeled columns
        // and counters are all zero; only the wall series is meaningful.
        units.push(Unit {
            id: format!("verify.plan_check/{mat_name}"),
            nnz,
            run: Box::new(move || {
                let report = dasp_verify::verify_full(dm);
                assert!(report.is_clean(), "suite matrix must verify: {report}");
            }),
            traced: Box::new(move |_| {
                (
                    Modeled::default(),
                    TrafficCounters::default(),
                    OpsCounters::default(),
                )
            }),
        });
    }
    units.sort_by(|a, b| a.id.cmp(&b.id));

    // Warmup sweep (untimed), then rep-major timed sweeps.
    for u in &units {
        (u.run)();
    }
    let mut series: Vec<WallSeries> = units.iter().map(|_| WallSeries::default()).collect();
    for rep in 0..cfg.reps {
        if cfg.progress {
            eprintln!("  sweep {}/{}", rep + 1, cfg.reps);
        }
        for (u, s) in units.iter().zip(&mut series) {
            let t0 = std::time::Instant::now();
            (u.run)();
            s.samples_us.push(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    if cfg.progress {
        eprintln!("  traced sweep");
    }
    let workloads: Vec<Workload> = units
        .iter()
        .zip(&series)
        .map(|(u, s)| {
            let (modeled, traffic, ops) = (u.traced)(&tracer);
            Workload {
                id: u.id.clone(),
                nnz: u.nnz,
                wall: wall_stats(s),
                modeled,
                traffic,
                ops,
            }
        })
        .collect();
    let trace = tracer.take_trace();
    let calltree = CallTree::from_trace(&trace);
    SuiteOutcome {
        snapshot: BenchSnapshot {
            seq: cfg.seq,
            git_rev: git_rev(),
            profile: if cfg.quick { "quick" } else { "full" }.to_string(),
            device: cfg.device.clone(),
            executor: cfg.executor.name().to_string(),
            reps: cfg.reps as u64,
            workloads,
        },
        calltree,
        trace,
    }
}

fn wall_stats(series: &WallSeries) -> WallStats {
    WallStats {
        reps: series.len() as u64,
        median_us: series.median_us(),
        mad_us: series.mad_us(),
        min_us: series.min_us(),
        max_us: series.max_us(),
    }
}

fn modeled(seconds: f64, shares: (f64, f64, f64), gflops: f64) -> Modeled {
    Modeled {
        us: seconds * 1e6,
        random_share: shares.0,
        compute_share: shares.1,
        misc_share: shares.2,
        gflops,
    }
}

fn traffic(s: &dasp_simt::KernelStats) -> TrafficCounters {
    TrafficCounters {
        dram_bytes: s.dram_bytes(),
        bytes_val: s.bytes_val,
        bytes_idx: s.bytes_idx,
        x_requests: s.x_requests,
        x_hits: s.x_hits,
    }
}

fn ops(s: &dasp_simt::KernelStats) -> OpsCounters {
    OpsCounters {
        mma_ops: s.mma_ops,
        fma_ops: s.fma_ops,
        launches: s.launches,
    }
}

/// Renders the human summary table of a snapshot: wall median ± MAD,
/// modeled time, throughput, and the three attribution shares.
pub fn render_suite_table(snap: &BenchSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34}  {:>12}  {:>9}  {:>8}  {:>5} {:>5} {:>5}\n",
        "workload", "wall_us", "model_us", "gflops", "rnd%", "cmp%", "msc%"
    ));
    for w in &snap.workloads {
        out.push_str(&format!(
            "{:<34}  {:>7.1}±{:<4.1}  {:>9.2}  {:>8.2}  {:>4.0}% {:>4.0}% {:>4.0}%\n",
            w.id,
            w.wall.median_us,
            w.wall.mad_us,
            w.modeled.us,
            w.modeled.gflops,
            100.0 * w.modeled.random_share,
            100.0 * w.modeled.compute_share,
            100.0 * w.modeled.misc_share,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SuiteConfig {
        SuiteConfig {
            reps: 2,
            quick: true,
            spmm_widths: vec![1],
            ..SuiteConfig::default()
        }
    }

    fn tiny_matrices() -> Vec<(&'static str, Csr<f64>)> {
        vec![("banded", dasp_matgen::banded(200, 8, 6, 11))]
    }

    #[test]
    fn tiny_suite_produces_a_valid_sorted_snapshot() {
        let out = run_suite(&tiny_config(), &tiny_matrices());
        let snap = &out.snapshot;
        // 10 SpMV methods + 2 SpMM methods at width 1 + 1 verify row.
        assert_eq!(snap.workloads.len(), 13);
        assert!(snap.workloads.windows(2).all(|p| p[0].id < p[1].id));
        assert_eq!(snap.profile, "quick");
        assert_eq!(snap.executor, "seq");
        for w in &snap.workloads {
            assert_eq!(w.wall.reps, 2, "{}", w.id);
            assert!(w.wall.median_us > 0.0, "{}", w.id);
            if w.id.starts_with("verify.plan_check/") {
                // Wall-only row: no kernel ran, every modeled column is 0.
                assert_eq!(w.modeled, Modeled::default(), "{}", w.id);
                assert_eq!(w.traffic, TrafficCounters::default(), "{}", w.id);
                continue;
            }
            assert!(w.modeled.us > 0.0, "{}", w.id);
            assert!(w.traffic.dram_bytes > 0, "{}", w.id);
            let share_sum = w.modeled.random_share + w.modeled.compute_share + w.modeled.misc_share;
            assert!((share_sum - 1.0).abs() < 1e-9, "{}: {share_sum}", w.id);
        }
        assert!(snap.workload("spmv/banded/dasp").is_some());
        assert!(snap.workload("spmm/banded/dasp/rhs1").is_some());
        assert!(snap.workload("verify.plan_check/banded").is_some());

        // The snapshot serializes to valid JSON and round-trips.
        let json = snap.to_json();
        assert!(dasp_trace::validate_json(&json).is_ok());
        let back = BenchSnapshot::from_json(&json).unwrap();
        assert_eq!(back.workloads.len(), 13);

        // The traced runs produced a non-trivial profile with the DASP
        // kernel spans in it.
        assert!(!out.calltree.is_empty());
        assert!(out
            .calltree
            .nodes()
            .any(|n| n.name().starts_with("spmv.kernel.")));
        assert!(!out.trace.is_empty());
        assert!(out.trace.check_balanced().is_ok());
    }

    #[test]
    fn counters_are_executor_independent() {
        let seq = run_suite(&tiny_config(), &tiny_matrices());
        let par = run_suite(
            &SuiteConfig {
                executor: Executor::par_with_threads(Some(2)),
                ..tiny_config()
            },
            &tiny_matrices(),
        );
        for (a, b) in seq.snapshot.workloads.iter().zip(&par.snapshot.workloads) {
            assert_eq!(a.id, b.id);
            // Streamed traffic and op counts are order-independent; only
            // the x-cache split (and wall/modeled time) may differ.
            assert_eq!(a.traffic.bytes_val, b.traffic.bytes_val, "{}", a.id);
            assert_eq!(a.ops.mma_ops, b.ops.mma_ops, "{}", a.id);
            assert_eq!(a.ops.fma_ops, b.ops.fma_ops, "{}", a.id);
        }
        assert_eq!(par.snapshot.executor, "par");
    }

    #[test]
    fn suite_table_lists_every_workload() {
        let out = run_suite(&tiny_config(), &tiny_matrices());
        let table = render_suite_table(&out.snapshot);
        for w in &out.snapshot.workloads {
            assert!(table.contains(&w.id), "table missing {}", w.id);
        }
    }

    #[test]
    #[should_panic(expected = "unknown device model")]
    fn unknown_device_panics() {
        let cfg = SuiteConfig {
            device: "tpu".to_string(),
            ..tiny_config()
        };
        run_suite(&cfg, &tiny_matrices());
    }
}

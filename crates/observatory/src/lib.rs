//! `dasp-observatory` — the repo's performance observatory.
//!
//! The simulator work in this workspace only pays off if its performance
//! story is *trackable*: every PR should be able to answer "did the
//! simulated kernels get slower to run, and did the modeled GPU time
//! move?" without anyone eyeballing bench logs. This crate supplies the
//! three pieces the `dasp-bench` CLI wires together:
//!
//! * [`suite`] — a deterministic benchmark suite runner sweeping the four
//!   structural matrix classes × all ten SpMV methods (plus the SpMM
//!   widths), recording wall-clock series (median + MAD), the roofline
//!   model's GPU-time estimate, and traffic/attribution counters.
//! * [`calltree`] — aggregation of `dasp-trace` spans into a hierarchical
//!   inclusive/exclusive profile, with a top-N hot-region table and
//!   collapsed-stack (flamegraph) export.
//! * [`snapshot`] / [`diff`] — a versioned `BENCH_<seq>.json` snapshot
//!   schema committed at the repo root to form a perf trajectory, and a
//!   noise-aware regression comparator over two snapshots (median ± MAD
//!   bands) with a human table and a machine-readable verdict.
//! * [`interp`] — an interpreter-throughput microbench (warp-ops/sec per
//!   DASP kernel, probe hooks vs. lane math) feeding the "interpreter
//!   overhead" row under the `dasp-bench` hot table.
//!
//! Like the rest of the workspace this crate has no external
//! dependencies; the [`json`] module carries the small parser that reads
//! snapshots back.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calltree;
pub mod diff;
pub mod interp;
pub mod json;
pub mod snapshot;
pub mod suite;

pub use calltree::CallTree;
pub use diff::{diff_snapshots, DiffConfig, DiffReport, DiffRow, Verdict};
pub use interp::{probe_overhead_share, render_interp_table, run_interp_bench, InterpRecord};
pub use json::Json;
pub use snapshot::{
    next_seq, snapshot_path, BenchSnapshot, Modeled, OpsCounters, TrafficCounters, WallStats,
    Workload,
};
pub use suite::{run_suite, SuiteConfig, SuiteOutcome};

//! Smoke tests of the experiment claims themselves: the key *shape*
//! properties the reproduction promises must hold on every run.

use dasp_repro::matgen::{self, dense_vector};
use dasp_repro::perf::{a100, measure, MethodKind};

/// Fig. 1 shape: DASP's effective bandwidth beats CSR5 and the vendor CSR
/// on a large bandwidth-bound matrix, and stays below the device peak.
#[test]
fn fig1_shape_dasp_bandwidth_leads() {
    let dev = a100();
    let csr = matgen::banded(40_000, 60, 40, 55);
    let x = dense_vector(csr.cols, 1);
    let dasp = measure(MethodKind::Dasp, &csr, &x, &dev);
    let csr5 = measure(MethodKind::Csr5, &csr, &x, &dev);
    let vendor = measure(MethodKind::VendorCsr, &csr, &x, &dev);
    assert!(dasp.bandwidth_gbs > csr5.bandwidth_gbs);
    assert!(dasp.bandwidth_gbs > vendor.bandwidth_gbs);
    assert!(dasp.bandwidth_gbs < dev.mem_bw_gbs);
}

/// Fig. 2 shape: COMPUTE occupies a non-trivial share (>= 10%) of scalar
/// CSR SpMV — the observation motivating DASP.
#[test]
fn fig2_shape_compute_share_is_substantial() {
    let dev = a100();
    let csr = matgen::banded(20_000, 40, 24, 56);
    let x = dense_vector(csr.cols, 2);
    let m = measure(MethodKind::CsrScalar, &csr, &x, &dev);
    let (_, compute, _) = m.estimate.shares();
    assert!(compute >= 0.10, "compute share {compute}");
}

/// Fig. 10 shape: on the matrix classes the paper highlights, DASP beats
/// the vendor CSR path in FP64.
#[test]
fn fig10_shape_dasp_beats_vendor_on_highlight_classes() {
    let dev = a100();
    for (name, csr) in [
        (
            "short-rows (mc2depi-like)",
            matgen::stencil2d(150, 150, 4, 57),
        ),
        (
            "medium-rows (cant-like)",
            matgen::banded(10_000, 70, 64, 58),
        ),
        (
            "long-rows (bibd-like)",
            matgen::rectangular_long(40, 20_000, 6000, 59),
        ),
    ] {
        let x = dense_vector(csr.cols, 3);
        let dasp = measure(MethodKind::Dasp, &csr, &x, &dev);
        let vendor = measure(MethodKind::VendorCsr, &csr, &x, &dev);
        assert!(
            dasp.estimate.seconds < vendor.estimate.seconds,
            "{name}: dasp {} vs vendor {}",
            dasp.estimate.seconds,
            vendor.estimate.seconds
        );
    }
}

/// §4.3 claim: on short-row-dominated matrices (the `mc2depi` analog),
/// DASP "can completely outperform the comparison methods".
#[test]
fn mc2depi_analog_beats_every_paper_baseline() {
    let dev = a100();
    let rep = dasp_repro::matgen::representative();
    let m = &rep.iter().find(|r| r.name == "mc2depi").unwrap().matrix;
    let x = dense_vector(m.cols, 8);
    let dasp = measure(MethodKind::Dasp, m, &x, &dev);
    for method in [
        MethodKind::Csr5,
        MethodKind::TileSpmv,
        MethodKind::LsrbCsr,
        MethodKind::VendorBsr,
        MethodKind::VendorCsr,
    ] {
        let other = measure(method, m, &x, &dev);
        assert!(
            dasp.estimate.seconds < other.estimate.seconds,
            "dasp {} vs {} {}",
            dasp.estimate.seconds,
            method.name(),
            other.estimate.seconds
        );
    }
}

/// §4.2 shape: BSR collapses on matrices without block structure (the
/// paper's 283.92x headline against `lp_osa_60`, 66.89x on `dc2`).
#[test]
fn bsr_collapses_on_unstructured_matrices() {
    let dev = a100();
    let csr = matgen::uniform_random(8_000, 8_000, 4, 60);
    let x = dense_vector(csr.cols, 4);
    let dasp = measure(MethodKind::Dasp, &csr, &x, &dev);
    let bsr = measure(MethodKind::VendorBsr, &csr, &x, &dev);
    let speedup = bsr.estimate.seconds / dasp.estimate.seconds;
    assert!(speedup > 2.0, "dasp over bsr only {speedup:.2}x");
}

/// §4.3 shape: category statistics of the analogs match what the paper
/// reports for the originals.
#[test]
fn fig12_shape_category_profiles() {
    use dasp_repro::dasp::DaspMatrix;
    let reps = matgen::representative();
    let stats = |name: &str| {
        let r = reps.iter().find(|r| r.name == name).unwrap();
        DaspMatrix::from_csr(&r.matrix).category_stats()
    };
    // "all rows of this matrix belong to the short rows category" (mc2depi)
    let s = stats("mc2depi");
    assert_eq!(s.rows_long + s.rows_medium + s.rows_empty, 0);
    // "99843 medium rows and 21349 empty rows" (cop20k_A): medium + empty
    let s = stats("cop20k_A");
    assert_eq!(s.rows_long + s.rows_short, 0);
    assert!(s.rows_empty > 0);
    // long rows carry a large nonzero share in mip1 / Si41Ge41H72
    for name in ["mip1", "Si41Ge41H72"] {
        let s = stats(name);
        assert!(
            s.nnz_long as f64 > 0.2 * s.nnz as f64,
            "{name} long-nnz share too small"
        );
    }
}

/// FP16 shape (Fig. 9): DASP is faster than the vendor CSR in half
/// precision on both modeled devices.
#[test]
fn fig9_shape_fp16_speedup_on_both_devices() {
    use dasp_repro::fp16::F16;
    use dasp_repro::perf::h800;
    use dasp_repro::sparse::Csr;
    let csr = matgen::banded(15_000, 40, 24, 61);
    let h: Csr<F16> = csr.cast();
    let x: Vec<F16> = dense_vector(h.cols, 5)
        .iter()
        .map(|&v| F16::from_f64(v))
        .collect();
    for dev in [a100(), h800()] {
        let dasp = measure(MethodKind::Dasp, &h, &x, &dev);
        let vendor = measure(MethodKind::VendorCsr, &h, &x, &dev);
        assert!(
            dasp.estimate.seconds < vendor.estimate.seconds,
            "{}: dasp {} vendor {}",
            dev.name,
            dasp.estimate.seconds,
            vendor.estimate.seconds
        );
    }
}

/// Fig. 13 shape: DASP's preprocessing is cheaper than TileSpMV's on a
/// mid-sized matrix (real wall-clock, so allow generous margin but demand
/// the ordering).
#[test]
fn fig13_shape_preprocessing_ordering() {
    use dasp_repro::baselines::TileSpmv;
    use dasp_repro::dasp::DaspMatrix;
    use std::time::Instant;
    let csr = matgen::uniform_random(20_000, 20_000, 16, 62);
    // Warm both paths once.
    let _ = DaspMatrix::from_csr(&csr);
    let _ = TileSpmv::new(&csr);
    let t0 = Instant::now();
    let _ = DaspMatrix::from_csr(&csr);
    let dasp = t0.elapsed();
    let t1 = Instant::now();
    let _ = TileSpmv::new(&csr);
    let tile = t1.elapsed();
    assert!(
        dasp < tile * 3,
        "dasp prep {dasp:?} should not be far beyond tilespmv {tile:?}"
    );
}

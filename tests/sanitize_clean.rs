//! The sanitizer's fleet-wide clean contract: every kernel in the stack —
//! all six DASP SpMV kernels, the SpMM panel kernels at widths 1–8 and
//! multi-panel widths (masked last panel included), all
//! nine baselines, and the plan fill / value-refresh paths — must produce
//! **zero diagnostics** under [`SanitizeProbe`], on both executors, and
//! the sanitized output must be **bit-identical** to the unsanitized run
//! (the probe only observes; it never reorders an FMA).
//!
//! The complementary fault-injection tests (crates/sanitize/tests) prove
//! each checker *fires* on planted bugs, so a clean report here is
//! evidence of absence, not absence of evidence.

use dasp_repro::baselines::Baseline;
use dasp_repro::dasp::{DaspMatrix, DaspParams, DaspPlan};
use dasp_repro::fp16::{Scalar, F16};
use dasp_repro::sanitize::SanitizeProbe;
use dasp_repro::simt::{Executor, NoProbe, ParExecutor};
use dasp_repro::sparse::{Coo, Csr, DenseMat};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A parallel executor that always threads, even on tiny grids, so the
/// shard fork/merge path of the shadow write tracker is exercised.
fn forced_par() -> Executor {
    Executor::Par(
        ParExecutor::new()
            .with_threads(Some(4))
            .with_seq_threshold(0),
    )
}

/// A deterministic matrix whose row-length mix lands rows in **every**
/// DASP category: two long rows (> 256 nnz), a band of medium rows, short
/// rows of length 4 / 3 / 2 / 1 (each piecing kernel), and empty rows.
fn composite_matrix() -> Csr<f64> {
    let cols = 400;
    let mut coo = Coo::new(40, cols);
    let mut rng = SmallRng::seed_from_u64(0x5a71);
    let mut fill_row = |coo: &mut Coo<f64>, r: usize, len: usize| {
        // Stride the columns so every row of a given length still has a
        // distinct sparsity pattern.
        let stride = (r % 7) + 1;
        for k in 0..len {
            let c = (r * 13 + k * stride) % cols;
            coo.push(r, c, rng.gen_range(-1.0..1.0));
        }
    };
    fill_row(&mut coo, 0, 300); // long
    fill_row(&mut coo, 1, 390); // long
    for r in 2..10 {
        fill_row(&mut coo, r, 20 + r * 5); // medium (5..=256)
    }
    for (i, len) in [4usize, 3, 2, 1, 4, 3, 2, 1, 1, 3].iter().enumerate() {
        fill_row(&mut coo, 10 + i, *len); // every short piecing shape
    }
    // Rows 20..24 stay empty; a second band keeps the short kernels busy.
    for r in 24..40 {
        fill_row(&mut coo, r, (r % 4) + 1);
    }
    coo.to_csr()
}

fn dense_x(cols: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bits(y: &[f64]) -> Vec<u64> {
    y.iter().map(|v| v.to_bits()).collect()
}

/// The composite matrix really does cover all four categories — if a
/// future threshold change moved rows around, the clean-suite below would
/// silently stop exercising a kernel.
#[test]
fn composite_matrix_covers_all_categories() {
    let d = DaspMatrix::from_csr(&composite_matrix());
    let stats = d.category_stats();
    assert!(stats.rows_long > 0, "no long rows: {stats:?}");
    assert!(stats.rows_medium > 0, "no medium rows: {stats:?}");
    assert!(stats.rows_short > 0, "no short rows: {stats:?}");
    assert!(stats.rows_empty > 0, "no empty rows: {stats:?}");
}

/// All six DASP SpMV kernels run clean under the sanitizer on both
/// executors, and the sanitized `y` is bit-identical to the plain run.
#[test]
fn dasp_spmv_is_clean_and_bit_identical() {
    let csr = composite_matrix();
    let d = DaspMatrix::from_csr(&csr);
    let x = dense_x(csr.cols, 7);
    for exec in [Executor::seq(), forced_par()] {
        let y_plain = d.spmv_with(&x, &mut NoProbe, &exec);
        let mut sp = SanitizeProbe::new(NoProbe);
        let y_san = d.spmv_with(&x, &mut sp, &exec);
        let report = sp.report();
        assert!(report.is_clean(), "spmv diagnostics: {report}");
        assert_eq!(bits(&y_plain), bits(&y_san), "sanitizer perturbed y");
    }
}

/// The SpMM panel kernels stay clean at every RHS width 1..=8 (full
/// panel, partial panels, and the width-1 degenerate case) and at
/// multi-panel widths (20 and 33: interior panels plus a masked last
/// panel), with the sanitized panels bit-identical to the plain run.
#[test]
fn dasp_spmm_all_widths_are_clean() {
    let csr = composite_matrix();
    let d = DaspMatrix::from_csr(&csr);
    for width in (1..=8usize).chain([20, 33]) {
        let columns: Vec<Vec<f64>> = (0..width)
            .map(|j| dense_x(csr.cols, 100 + j as u64))
            .collect();
        let b = DenseMat::from_columns(&columns);
        for exec in [Executor::seq(), forced_par()] {
            let y_plain = d.spmm_with(&b, &mut NoProbe, &exec);
            let mut sp = SanitizeProbe::new(NoProbe);
            let y_san = d.spmm_with(&b, &mut sp, &exec);
            let report = sp.report();
            assert!(report.is_clean(), "spmm width {width}: {report}");
            for j in 0..width {
                assert_eq!(
                    bits(&y_plain.column(j)),
                    bits(&y_san.column(j)),
                    "sanitizer perturbed spmm column {j} at width {width}"
                );
            }
        }
    }
}

/// Every baseline method — including the carry-chain ones (csr5, lsrb,
/// merge-csr) whose cross-warp staging is exactly what racecheck and
/// initcheck watch — runs clean on both executors.
#[test]
fn baselines_are_clean_and_bit_identical() {
    let csr = composite_matrix();
    let x = dense_x(csr.cols, 11);
    for name in [
        "csr-scalar",
        "cusparse-csr",
        "csr5",
        "tilespmv",
        "lsrb-csr",
        "cusparse-bsr",
        "merge-csr",
        "sell-c-sigma",
        "hyb",
    ] {
        let m = Baseline::build(name, &csr).unwrap();
        for exec in [Executor::seq(), forced_par()] {
            let y_plain = m.spmv_with(&x, &mut NoProbe, &exec);
            let mut sp = SanitizeProbe::new(NoProbe);
            let y_san = m.spmv_with(&x, &mut sp, &exec);
            let report = sp.report();
            assert!(report.is_clean(), "{name} diagnostics: {report}");
            assert_eq!(bits(&y_plain), bits(&y_san), "{name}: perturbed y");
        }
    }
}

/// The plan-reuse paths — `DaspPlan::analyze` + `fill` and the O(nnz)
/// `update_values` refresh — feed the same kernels the same way: still
/// clean, still bit-identical to a from-scratch build.
#[test]
fn plan_fill_and_update_values_stay_clean() {
    let csr = composite_matrix();
    let x = dense_x(csr.cols, 13);
    let plan = DaspPlan::analyze(&csr, DaspParams::default());
    let mut d = plan.fill(&csr);

    let mut sp = SanitizeProbe::new(NoProbe);
    let y_san = d.spmv_with(&x, &mut sp, &Executor::seq());
    assert!(sp.report().is_clean(), "plan fill: {}", sp.report());
    let y_plain = DaspMatrix::from_csr(&csr).spmv_with(&x, &mut NoProbe, &Executor::seq());
    assert_eq!(bits(&y_plain), bits(&y_san));

    // Refresh the values in place and re-run: the refreshed matrix must
    // match a from-scratch build of the scaled CSR, still with a clean
    // report.
    let scaled: Vec<f64> = csr.vals.iter().map(|v| v * 1.5).collect();
    d.update_values(&scaled).unwrap();
    let mut csr2 = csr.clone();
    csr2.vals = scaled;
    let mut sp = SanitizeProbe::new(NoProbe);
    let y_san = d.spmv_with(&x, &mut sp, &Executor::seq());
    assert!(sp.report().is_clean(), "update_values: {}", sp.report());
    let y_plain = DaspMatrix::from_csr(&csr2).spmv_with(&x, &mut NoProbe, &Executor::seq());
    assert_eq!(bits(&y_plain), bits(&y_san));
}

/// Random matrix with a steerable short/medium/long row-length mix, so
/// the property test's inputs cover every DASP category combination.
fn random_matrix(
    rows: usize,
    cols: usize,
    short_w: u32,
    medium_w: u32,
    long_w: u32,
    seed: u64,
) -> Csr<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = Coo::new(rows, cols);
    let total = (short_w + medium_w + long_w).max(1);
    for r in 0..rows {
        let dice = rng.gen_range(0..total);
        let len = if dice < short_w {
            rng.gen_range(0..=4usize) // includes empty rows
        } else if dice < short_w + medium_w {
            rng.gen_range(5..=256usize)
        } else {
            rng.gen_range(257..=600usize)
        };
        let len = len.min(cols);
        let mut cs: Vec<usize> = Vec::with_capacity(len);
        while cs.len() < len {
            let c = rng.gen_range(0..cols);
            if !cs.contains(&c) {
                cs.push(c);
            }
        }
        for c in cs {
            coo.push(r, c, rng.gen_range(-1.0..1.0));
        }
    }
    coo.to_csr()
}

/// Runs the DASP pipeline at precision `S` under both executors and
/// asserts the sanitizer contract: clean report, bit-identical output.
fn assert_sanitize_parity<S: Scalar>(csr: &Csr<S>, seed: u64) {
    let d = DaspMatrix::from_csr(csr);
    let mut rng = SmallRng::seed_from_u64(seed);
    let x: Vec<S> = (0..csr.cols)
        .map(|_| S::from_f64(rng.gen_range(-1.0..1.0)))
        .collect();
    for exec in [Executor::seq(), forced_par()] {
        let y_plain = d.spmv_with(&x, &mut NoProbe, &exec);
        let mut sp = SanitizeProbe::new(NoProbe);
        let y_san = d.spmv_with(&x, &mut sp, &exec);
        let report = sp.report();
        assert!(report.is_clean(), "diagnostics: {report}");
        let b_plain: Vec<u64> = y_plain.iter().map(|v| v.to_f64().to_bits()).collect();
        let b_san: Vec<u64> = y_san.iter().map(|v| v.to_f64().to_bits()).collect();
        assert_eq!(b_plain, b_san, "sanitizer perturbed y");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite property: for random matrices at all three precisions,
    /// running under the sanitizer changes nothing and reports nothing.
    #[test]
    fn sanitized_spmv_matches_plain_at_every_precision(
        rows in 1usize..80,
        cols in 1usize..700,
        short_w in 0u32..4,
        medium_w in 0u32..4,
        long_w in 0u32..3,
        seed in any::<u64>(),
    ) {
        let csr = random_matrix(rows, cols, short_w, medium_w, long_w, seed);
        assert_sanitize_parity::<f64>(&csr, seed ^ 1);
        let csr32: Csr<f32> = csr.cast();
        assert_sanitize_parity::<f32>(&csr32, seed ^ 2);
        let csr16: Csr<F16> = csr.cast();
        assert_sanitize_parity::<F16>(&csr16, seed ^ 3);
    }
}

//! Workspace-level integration tests: the full pipeline — generator ->
//! format conversion -> simulated kernels -> cost model — across crates.

use dasp_repro::baselines::Baseline;
use dasp_repro::dasp::DaspMatrix;
use dasp_repro::fp16::F16;
use dasp_repro::matgen;
use dasp_repro::perf::{a100, h800, measure, MethodKind};
use dasp_repro::simt::NoProbe;
use dasp_repro::sparse::Csr;

const METHODS: [MethodKind; 10] = [
    MethodKind::Dasp,
    MethodKind::CsrScalar,
    MethodKind::Csr5,
    MethodKind::TileSpmv,
    MethodKind::LsrbCsr,
    MethodKind::VendorBsr,
    MethodKind::VendorCsr,
    MethodKind::MergeCsr,
    MethodKind::Sell,
    MethodKind::Hyb,
];

fn check_all_methods(name: &str, csr: &Csr<f64>) {
    let x = matgen::dense_vector(csr.cols, 9);
    let want = csr.spmv_reference(&x);
    let dev = a100();
    for method in METHODS {
        let m = measure(method, csr, &x, &dev);
        assert!(m.estimate.seconds > 0.0, "{name}/{}", method.name());
        for (i, (&a, &b)) in m.y.iter().zip(&want).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "{name}/{} row {i}: got {a} want {b}",
                method.name()
            );
        }
    }
}

#[test]
fn every_method_agrees_on_every_generator_class() {
    check_all_methods("banded", &matgen::banded(3000, 30, 20, 21));
    check_all_methods("stencil4", &matgen::stencil2d(50, 50, 4, 22));
    check_all_methods("stencil9", &matgen::stencil2d(40, 40, 9, 23));
    check_all_methods("rmat", &matgen::rmat(11, 8, 24));
    check_all_methods("uniform", &matgen::uniform_random(2000, 2000, 12, 25));
    check_all_methods(
        "uniform_var",
        &matgen::uniform_random_var(2000, 2000, 1, 30, 26),
    );
    check_all_methods("diag", &matgen::diagonal_bands(5000, &[0, 3, -3], 27));
    check_all_methods("circuit", &matgen::circuit_like(4000, 4, 1200, 28));
    check_all_methods("rect", &matgen::rectangular_long(20, 6000, 1500, 29));
    check_all_methods("blocks", &matgen::block_dense(512, 8, 3, 30));
}

#[test]
fn representative_analogs_run_all_methods() {
    // A slice of the Table-2 analogs through the full FP64 pipeline.
    for r in matgen::representative() {
        if !["mc2depi", "dc2", "cant", "mip1"].contains(&r.name) {
            continue;
        }
        check_all_methods(r.name, &r.matrix);
    }
}

#[test]
fn fp16_pipeline_matches_rounded_reference_on_both_devices() {
    let csr = matgen::banded(2500, 25, 18, 31);
    let h: Csr<F16> = csr.cast();
    let h64: Csr<f64> = h.cast();
    let x64 = matgen::dense_vector(h.cols, 10);
    let x: Vec<F16> = x64.iter().map(|&v| F16::from_f64(v)).collect();
    let xr: Vec<f64> = x.iter().map(|v| v.to_f64()).collect();
    let want = h64.spmv_reference(&xr);
    for dev in [a100(), h800()] {
        for method in [MethodKind::Dasp, MethodKind::VendorCsr] {
            let m = measure(method, &h, &x, &dev);
            for (i, (&a, &b)) in m.y.iter().zip(&want).enumerate() {
                assert!(
                    (a - b).abs() <= 0.05 * b.abs().max(1.0),
                    "{}/{} row {i}: got {a} want {b}",
                    dev.name,
                    method.name()
                );
            }
        }
    }
}

#[test]
fn dasp_formats_are_consistent_between_precisions() {
    // The format layout must not depend on the value type, only on the
    // sparsity pattern.
    let csr = matgen::circuit_like(3000, 3, 800, 32);
    let h: Csr<F16> = csr.cast();
    let d64 = DaspMatrix::from_csr(&csr);
    let d16 = DaspMatrix::from_csr(&h);
    assert_eq!(d64.long.group_ptr, d16.long.group_ptr);
    assert_eq!(d64.long.rows, d16.long.rows);
    assert_eq!(d64.medium.rowblock_ptr, d16.medium.rowblock_ptr);
    assert_eq!(d64.medium.rows, d16.medium.rows);
    assert_eq!(d64.medium.irreg_ptr, d16.medium.irreg_ptr);
    assert_eq!(d64.short.perm13, d16.short.perm13);
    assert_eq!(d64.short.perm4, d16.short.perm4);
    assert_eq!(d64.short.perm22, d16.short.perm22);
    assert_eq!(d64.short.perm1, d16.short.perm1);
}

#[test]
fn baseline_enum_and_method_kind_agree() {
    // The two dispatch surfaces (perf::MethodKind and baselines::Baseline)
    // must produce identical y for the same algorithm.
    let csr = matgen::banded(1500, 15, 10, 33);
    let x = matgen::dense_vector(csr.cols, 11);
    let dev = a100();
    for (enum_name, kind) in [
        ("csr5", MethodKind::Csr5),
        ("tilespmv", MethodKind::TileSpmv),
        ("lsrb-csr", MethodKind::LsrbCsr),
        ("cusparse-csr", MethodKind::VendorCsr),
    ] {
        let via_enum = Baseline::build(enum_name, &csr)
            .unwrap()
            .spmv(&x, &mut NoProbe);
        let via_kind = measure(kind, &csr, &x, &dev).y;
        assert_eq!(via_enum, via_kind, "{enum_name}");
    }
}

#[test]
fn matrix_market_round_trip_through_full_pipeline() {
    use dasp_repro::sparse::mm::{read_matrix_market, write_matrix_market};
    use dasp_repro::sparse::Coo;

    let csr = matgen::rmat(9, 5, 34);
    let coo = {
        let mut c = Coo::new(csr.rows, csr.cols);
        for r in 0..csr.rows {
            for (col, v) in csr.row(r) {
                c.push(r, col as usize, v);
            }
        }
        c
    };
    let mut buf = Vec::new();
    write_matrix_market(&coo, &mut buf).unwrap();
    let back: Coo<f64> = read_matrix_market(std::io::BufReader::new(buf.as_slice())).unwrap();
    let csr2 = back.to_csr();
    assert_eq!(csr, csr2);
    check_all_methods("mm-roundtrip", &csr2);
}

#[test]
fn empty_and_degenerate_matrices_run_everywhere() {
    let dev = a100();
    for (rows, cols) in [(1usize, 1usize), (1, 100), (100, 1), (64, 64)] {
        let csr = Csr::<f64>::empty(rows, cols);
        let x = vec![1.0; cols];
        for method in METHODS {
            let m = measure(method, &csr, &x, &dev);
            assert!(m.y.iter().all(|&v| v == 0.0), "{}", method.name());
        }
    }
    // Single-element matrix.
    let mut coo = dasp_repro::sparse::Coo::<f64>::new(1, 1);
    coo.push(0, 0, 2.5);
    let csr = coo.to_csr();
    for method in METHODS {
        let m = measure(method, &csr, &[2.0], &dev);
        assert_eq!(m.y, vec![5.0], "{}", method.name());
    }
}

//! Umbrella crate re-exporting the DASP reproduction workspace for examples
//! and integration tests at the repository root.

pub use dasp_baselines as baselines;
pub use dasp_core as dasp;
pub use dasp_fp16 as fp16;
pub use dasp_matgen as matgen;
pub use dasp_perf as perf;
pub use dasp_sanitize as sanitize;
pub use dasp_simt as simt;
pub use dasp_solver as solver;
pub use dasp_sparse as sparse;
pub use dasp_trace as trace;
